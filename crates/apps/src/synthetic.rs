//! Open-loop synthetic workloads (§5.2, Figure 7).
//!
//! The dispersive workload follows the ghOSt paper's setup, reused by
//! Skyloft: 99.5% short requests of 4 μs and 0.5% long requests of 10 ms,
//! arriving as a Poisson process. Requests run as one-shot tasks on the
//! machine; this module turns an [`OpenLoop`] generator into a
//! self-rescheduling chain of simulation events.
//!
//! Two ingress paths exist:
//!
//! * **The NIC data plane** ([`Placement::Rss`]): datagrams transit the
//!   wire (a [`wire_draw`] each), are RSS-steered into the bounded
//!   per-core RX rings of a [`MultiQueueNic`], and a polling core drains
//!   them in bursts toward workers with room in their in-service window.
//!   Overload tail-drops at the rings (client times out) instead of
//!   accumulating unbounded queues inside the simulator.
//! * **The teleport path** ([`Placement::Queue`],
//!   [`Placement::RssDirect`]): requests spawn directly at their arrival
//!   instant, with wire and stack costs folded in as accounting. Queues
//!   are unbounded — fine below saturation, unphysical above it. Kept for
//!   policy-comparison studies where the NIC must not be a variable, and
//!   as the pre-data-plane baseline in `netbench`.
//!
//! Both paths charge [`WIRE_LATENCY`] on *both* directions of every
//! delivered request: a client measures request→response round trip, and
//! omitting the wire understated every latency figure by ~2 μs.

use std::cell::RefCell;
use std::rc::Rc;

use skyloft::machine::{Call, Event, Machine, NetTrace, Recur};
use skyloft::stats::class_slot;
use skyloft::task::RequestMeta;
use skyloft::SpawnOpts;
use skyloft_net::dataplane::{MultiQueueNic, NicConfig};
use skyloft_net::loadgen::{
    Backoff, ClassRetryBudgets, NetProfile, OpenLoop, RetryBudget, RetryPolicy,
};
use skyloft_net::nic::{stack_overhead, wire_draw, PacketFate, WIRE_LATENCY};
use skyloft_net::overload::{AdmissionConfig, AdmissionCtl, CodelConfig, MAX_CLASSES};
use skyloft_net::rss::{RssHasher, INDIRECTION_ENTRIES};
use skyloft_sim::{Distribution, EventQueue, Nanos, Rng};

/// The §5.2 dispersive service-time distribution.
pub fn dispersive() -> Distribution {
    Distribution::Bimodal {
        p_long: 0.005,
        short: Nanos::from_us(4),
        long: Nanos::from_ms(10),
    }
}

/// Class threshold separating short from long requests for dispersive
/// workloads.
pub fn dispersive_threshold() -> Nanos {
    Nanos::from_us(100)
}

/// The client and server endpoints every synthetic flow runs between; the
/// varying source port is what spreads flows across rings.
const CLIENT_IP: u32 = 0x0a00_0001;
const SERVER_IP: u32 = 0x0a00_0002;
const SERVER_PORT: u16 = 11_211;

/// First source port of the synthetic client population; request `seq`
/// uses port `FLOW_PORT_BASE + seq % FLOW_COUNT`.
const FLOW_PORT_BASE: u16 = 20_000;
/// Distinct client flows the generator cycles through.
const FLOW_COUNT: u64 = 20_000;

/// Per-flow Toeplitz hash cache for the synthetic client population.
///
/// Only the source port varies between flows, and the generator cycles
/// through [`FLOW_COUNT`] of them, so in steady state every packet of a
/// flow after its first reuses the hash instead of re-walking the
/// 12-byte tuple. The hash depends on the RSS *key* alone — never
/// rewritten mid-run — not the indirection table, so cached values stay
/// valid across chaos indirection rewrites; steering still goes through
/// the live table via [`RssHasher::ring_for_hash`]. Each slot remembers
/// the port it was filled for, so an out-of-pattern port can never alias
/// another flow's hash.
struct FlowHashCache {
    slots: Vec<Option<(u16, u32)>>,
}

impl FlowHashCache {
    fn new() -> Self {
        FlowHashCache {
            slots: vec![None; FLOW_COUNT as usize],
        }
    }

    /// The Toeplitz hash of the flow with source port `src_port`,
    /// computed on first use and cached thereafter.
    fn hash(&mut self, h: &RssHasher, src_port: u16) -> u32 {
        let idx = usize::from(src_port.wrapping_sub(FLOW_PORT_BASE)) % self.slots.len();
        match self.slots[idx] {
            Some((port, hash)) if port == src_port => hash,
            _ => {
                let hash = h.hash_flow(CLIENT_IP, SERVER_IP, src_port, SERVER_PORT);
                self.slots[idx] = Some((src_port, hash));
                hash
            }
        }
    }
}

/// Seed of the wire-transit jitter RNG. A fixed constant, not wall-clock
/// derived: a sweep point must replay identically whether it runs on the
/// serial or the threaded harness.
const WIRE_SEED: u64 = 0x57A6_6E12_D1CE_0001;

/// How arriving requests are placed onto cores.
#[derive(Clone)]
pub enum Placement {
    /// No placement hint: the policy decides (centralized queues).
    Queue,
    /// The kernel-bypass NIC path (§3.5): each request's flow is
    /// Toeplitz-hashed through the indirection table onto one of `n`
    /// bounded RX rings, and the polling core hands it to the ring's
    /// worker. Overload tail-drops at the rings.
    Rss {
        /// Worker (ring) count.
        n: usize,
    },
    /// Legacy RSS placement: the flow hash pins the request, but it
    /// spawns directly with no ring, no polling core, and no drop — the
    /// full per-request network overhead is added to the executed
    /// segment. Queues are unbounded past saturation.
    RssDirect {
        /// Worker count.
        n: usize,
    },
}

/// Installs an open-loop arrival process into the machine: each generated
/// request spawns a one-shot task of its service time for application
/// `app`; generation stops at `until` (virtual time).
pub fn install_open_loop(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
) {
    install_open_loop_net(q, gen, app, placement, until, None);
}

/// [`install_open_loop`] with an optional lossy network: each request
/// datagram draws a fate from the profile's [`skyloft_net::LossModel`].
/// Dropped requests never reach the server; the client times out and the
/// request is *recorded at the timeout value* in the latency histograms
/// (`stats.timeouts`, `stats.net_dropped`) — excluding it would understate
/// the tail exactly when the system is misbehaving. Duplicated requests
/// cost the server a second execution whose response is discarded
/// (`stats.net_duplicated`); the copy transits the wire independently, so
/// it arrives staggered from its original, never at the same instant.
pub fn install_open_loop_net(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
    net: Option<NetProfile>,
) {
    match placement {
        Placement::Rss { n } => {
            install_open_loop_nic(q, gen, app, NicConfig::for_workers(n), until, net)
        }
        Placement::Queue => schedule_next_direct(q, gen, app, None, until, net),
        Placement::RssDirect { n } => {
            schedule_next_direct(q, gen, app, Some(RssHasher::new(n)), until, net)
        }
    }
}

// ---------------------------------------------------------------------------
// The teleport path (Placement::Queue / Placement::RssDirect).
// ---------------------------------------------------------------------------

fn schedule_next_direct(
    q: &mut EventQueue<Event>,
    mut gen: OpenLoop,
    app: usize,
    rss: Option<RssHasher>,
    until: Nanos,
    mut net: Option<NetProfile>,
) {
    let base = q.now();
    let Some(first) = gen.next() else { return };
    let first_at = base + first.at;
    if first_at >= until {
        return;
    }
    // One self-rescheduling closure carries the generator for the whole
    // run: each firing delivers the pending request, draws the next
    // arrival, and returns its time so the machine re-schedules the same
    // box — the arrival chain allocates once, not once per request.
    let mut pending = first;
    let mut seq: u64 = 0;
    let mut wire = Rng::seed_from_u64(WIRE_SEED);
    let mut flow_cache = rss.as_ref().map(|_| FlowHashCache::new());
    let hook = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let req = pending;
        let fate = match net.as_mut() {
            Some(p) => p.loss.fate(),
            None => PacketFate::Deliver,
        };
        let (pin, overhead) = match &rss {
            Some(h) => {
                // Model a distinct client flow per request (varying
                // source port), hashed by the NIC onto a worker ring.
                // Steady-state flows hash once: the cache keyed by source
                // port skips the Toeplitz walk after a flow's first packet.
                let src_port = FLOW_PORT_BASE.wrapping_add((seq % FLOW_COUNT) as u16);
                let hash = flow_cache
                    .as_mut()
                    .expect("cache exists with rss")
                    .hash(h, src_port);
                let core = h.ring_for_hash(hash);
                (Some(core), skyloft_net::nic::per_request_overhead())
            }
            None => (None, Nanos::ZERO),
        };
        seq += 1;
        match fate {
            PacketFate::Drop => {
                // The request never reaches the server; the client
                // learns at its timeout and the sample enters the
                // histograms at that value.
                m.stats.net_dropped += 1;
                let timeout = net.as_ref().expect("drop implies profile").timeout;
                let class = req.class;
                let service = req.service;
                q.schedule_after(
                    timeout,
                    Event::Call(Call(Box::new(move |m: &mut Machine, _q| {
                        m.stats.record_timeout(class, timeout, service);
                    }))),
                );
            }
            PacketFate::Deliver | PacketFate::Duplicate => {
                // The teleport path has no physical wire events; both
                // transits of the round trip are charged by backdating
                // the arrival, so response = wire + server time + wire.
                let meta = RequestMeta {
                    arrival: q.now().saturating_sub(WIRE_LATENCY * 2),
                    service: req.service,
                    class: req.class,
                };
                let body = m.pooled_oneshot(req.service + overhead);
                m.spawn(
                    q,
                    body,
                    SpawnOpts {
                        app,
                        pin,
                        req: Some(meta),
                        weight: 1024,
                        record_wakeup: false,
                    },
                );
                if fate == PacketFate::Duplicate {
                    // The server does the work twice; the client keeps
                    // the first response, so the copy carries no request
                    // accounting. The copy took its own trip through the
                    // wire — an independent transit draw, surfacing here
                    // as a spawn offset — so it contends with its
                    // original realistically instead of materializing at
                    // the same instant.
                    m.stats.net_duplicated += 1;
                    let stagger = wire_draw(&mut wire);
                    let service = req.service;
                    q.schedule_after(
                        stagger,
                        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                            let body = m.pooled_oneshot(service + overhead);
                            m.spawn(
                                q,
                                body,
                                SpawnOpts {
                                    app,
                                    pin,
                                    req: None,
                                    weight: 1024,
                                    record_wakeup: false,
                                },
                            );
                        }))),
                    );
                }
            }
        }
        let next = gen.next()?;
        let at = base + next.at;
        if at >= until {
            return None;
        }
        pending = next;
        Some(at)
    };
    q.schedule(first_at, Event::Recur(Recur(Box::new(hook))));
}

// ---------------------------------------------------------------------------
// The NIC data plane path (Placement::Rss).
// ---------------------------------------------------------------------------

/// A request datagram in flight through the wire or an RX ring.
#[derive(Clone, Copy, Debug)]
struct Pkt {
    /// Original client send instant: the client's latency clock starts
    /// here and is *never* reset by a retry, so every histogram sample
    /// spans the full wait (coordinated-omission-safe).
    send: Nanos,
    /// This attempt's transmit instant (the per-attempt timeout clock).
    sent_at: Nanos,
    service: Nanos,
    class: u8,
    /// Owning application: tenants co-located on one shared NIC plane
    /// spawn under their own app, so per-app accounting (busy shares,
    /// SLO classes, fault scoping) attributes correctly.
    app: usize,
    src_port: u16,
    /// Whether this is the second delivery of a duplicated datagram.
    copy: bool,
    /// Retransmission count: 0 is the original request. Retries are a
    /// terminal ledger bucket — every per-datagram conservation counter
    /// except `net_generated`/`retries_spent` is gated on `attempt == 0`.
    attempt: u8,
}

/// End-to-end overload-control configuration for the NIC path: which of
/// the three defence layers are armed. The default arms none, leaving
/// the pure tail-drop pipeline exactly as it was before this module
/// learned to shed load.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverloadControl {
    /// CoDel drop law, one independent controller per RX ring.
    pub codel: Option<CodelConfig>,
    /// Deadline-aware admission at the polling core: a request whose
    /// backlog-predicted finish already overruns its SLO budget is shed
    /// at poll time instead of burning a worker.
    pub admission: Option<AdmissionConfig>,
    /// Client-side retries: per-attempt timeout, decorrelated-jitter
    /// backoff, and a global retry budget.
    pub retry: Option<RetryPolicy>,
    /// Per-class retry provisioning: `Some(fracs)` replaces the single
    /// global retry bucket with one token bucket per SLO class, class
    /// `c` filling at `fracs[c]` permille of its *own* offered load
    /// (`None` entries inherit the policy-wide `budget_permille`). This
    /// is how an `SloClass::retry_frac` reaches the client: a batch
    /// tenant's timeout storm can then never drain the retry capacity a
    /// latency-critical tenant was provisioned. Ignored unless `retry`
    /// is also armed.
    pub retry_frac: Option<[Option<u32>; MAX_CLASSES]>,
}

impl OverloadControl {
    /// All three layers at their default settings.
    pub fn full() -> Self {
        OverloadControl {
            codel: Some(CodelConfig::default()),
            admission: Some(AdmissionConfig::default()),
            retry: Some(RetryPolicy::default()),
            retry_frac: None,
        }
    }
}

/// The retrying client's mutable state.
struct RetryState {
    policy: RetryPolicy,
    /// The single global bucket (used when `class_budget` is unarmed).
    budget: RetryBudget,
    /// Per-class buckets, when [`OverloadControl::retry_frac`] armed
    /// them; exactly one of the two bucket fields is live at a time.
    class_budget: Option<ClassRetryBudgets>,
    backoff: Backoff,
}

impl RetryState {
    /// Accrues budget for one offered request of `class`.
    fn on_request(&mut self, class: u8) {
        match self.class_budget.as_mut() {
            Some(cb) => cb.on_request(class),
            None => self.budget.on_request(),
        }
    }

    /// Attempts to spend one retry token for `class`.
    fn try_spend(&mut self, class: u8) -> bool {
        match self.class_budget.as_mut() {
            Some(cb) => cb.try_spend(class),
            None => self.budget.try_spend(),
        }
    }
}

/// Driver state shared between the arrival chain, the in-flight wire
/// events, and the polling core. One per installed load; the simulation
/// is single-threaded, so `Rc<RefCell<..>>` suffices.
struct PlaneState {
    nic: MultiQueueNic<Pkt>,
    /// Packets handed to each worker core since install; `handed[c] -
    /// stats.finished_by_core[c]` is the worker's in-service backlog the
    /// poller backpressures on.
    handed: Vec<u64>,
    wire_rng: Rng,
    /// Datagrams currently transiting the wire toward the NIC.
    wire_pending: u64,
    /// Arrival chains still generating (one per tenant). The poller may
    /// deregister only once every chain has produced its last request.
    gens_live: usize,
    /// Per-attempt client abandon timeout for lost datagrams.
    timeout: Nanos,
    /// Deadline-aware admission controller, when armed.
    admission: Option<AdmissionCtl>,
    /// Retrying-client state, when armed.
    retry: Option<RetryState>,
    /// Pending loss decisions (timeout fires that may still turn into a
    /// retry); keeps the poller alive until the last retry has landed.
    /// Only maintained when retries are armed, so the retry-free poller
    /// deregisters exactly when it always has.
    loss_pending: u64,
    /// Rolls the choice of which indirection entry a chaos fault wedges.
    stick_seq: u64,
    /// Per-flow Toeplitz hash cache: steady-state flows hash once, and
    /// [`nic_rx`] steers by cached hash through the live indirection
    /// table.
    flow_cache: FlowHashCache,
}

/// Installs an open-loop arrival process routed through an explicitly
/// configured [`MultiQueueNic`]: wire transit, RSS steering into bounded
/// RX rings, burst-draining polling core, per-worker backpressure.
/// [`Placement::Rss`] is this with [`NicConfig::for_workers`].
pub fn install_open_loop_nic(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    cfg: NicConfig,
    until: Nanos,
    net: Option<NetProfile>,
) {
    install_open_loop_ctl(q, gen, app, cfg, until, net, OverloadControl::default());
}

/// [`install_open_loop_nic`] with the overload-control layers of
/// [`OverloadControl`] armed: CoDel on the rings, deadline-aware
/// admission at the polling core, and the retrying client. The poller
/// also feeds the machine's brownout controller
/// ([`Machine::note_overload_sample`]) one sample per poll round — worst
/// head-of-ring sojourn plus whether any drain was backpressured —
/// whether or not any layer here is armed.
pub fn install_open_loop_ctl(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    cfg: NicConfig,
    until: Nanos,
    net: Option<NetProfile>,
    ctl: OverloadControl,
) {
    install_tenants(
        q,
        vec![Tenant {
            gen,
            app,
            class: None,
        }],
        cfg,
        until,
        net,
        ctl,
    );
}

/// One co-located application's share of a multi-tenant load: its own
/// arrival process and application id, plus (optionally) a fixed SLO
/// class stamped on every request it generates.
pub struct Tenant {
    /// This tenant's open-loop arrival process (an empty or zero-rate
    /// generator installs nothing — a legal degenerate sweep point).
    pub gen: OpenLoop,
    /// Application the tenant's requests spawn under.
    pub app: usize,
    /// SLO class stamped on every generated request; `None` keeps the
    /// generator's own service-threshold classification (the
    /// single-tenant behavior).
    pub class: Option<u8>,
}

/// Installs several tenants onto ONE shared NIC data plane: all arrival
/// chains feed the same RSS rings and the same polling core, so tenants
/// contend for ring slots, poll bandwidth, and workers exactly as
/// co-located applications contend for a real NIC. With
/// [`AdmissionConfig::class_slo`] armed, the polling core sheds each
/// request against *its own class's* deadline and service estimate; with
/// [`OverloadControl::retry_frac`] armed, each class retries from its
/// own token bucket.
pub fn install_tenants(
    q: &mut EventQueue<Event>,
    tenants: Vec<Tenant>,
    cfg: NicConfig,
    until: Nanos,
    net: Option<NetProfile>,
    ctl: OverloadControl,
) {
    let timeout = ctl
        .retry
        .map(|r| r.timeout)
        .or(net.as_ref().map(|p| p.timeout))
        .unwrap_or(cfg.client_timeout);
    let poll_interval = cfg.poll_interval;
    let poll_batch = cfg.poll_batch;
    let worker_depth = cfg.worker_depth;
    let mut nic = MultiQueueNic::new(cfg);
    if let Some(law) = ctl.codel {
        nic.set_codel(law);
    }
    let class_budget = match (ctl.retry, ctl.retry_frac) {
        (Some(policy), Some(fracs)) => {
            let mut cb = ClassRetryBudgets::new(policy.budget_permille, policy.budget_burst);
            for (c, frac) in fracs.iter().enumerate() {
                if let Some(permille) = frac {
                    cb.set_class(c as u8, *permille, policy.budget_burst);
                }
            }
            Some(cb)
        }
        _ => None,
    };
    let st = Rc::new(RefCell::new(PlaneState {
        handed: vec![0; nic.n_rings()],
        nic,
        wire_rng: Rng::seed_from_u64(WIRE_SEED),
        wire_pending: 0,
        gens_live: 0,
        timeout,
        admission: ctl.admission.map(AdmissionCtl::new),
        retry: ctl.retry.map(|policy| RetryState {
            budget: RetryBudget::new(policy.budget_permille, policy.budget_burst),
            class_budget,
            backoff: Backoff::new(policy.backoff_base, policy.backoff_cap, WIRE_SEED),
            policy,
        }),
        loss_pending: 0,
        stick_seq: 0,
        flow_cache: FlowHashCache::new(),
    }));

    // One arrival chain per tenant, all feeding the shared plane; the
    // poller starts one interval after the earliest first arrival.
    let mut earliest: Option<Nanos> = None;
    for tenant in tenants {
        if let Some(first_at) = install_tenant_chain(q, tenant, until, net.clone(), &st) {
            st.borrow_mut().gens_live += 1;
            earliest = Some(earliest.map_or(first_at, |e| e.min(first_at)));
        }
    }
    // Every tenant degenerate (zero rate, or first arrival past the
    // horizon): nothing to poll for, install nothing.
    let Some(first_at) = earliest else { return };

    // The polling core: visits the rings every poll_interval, drains a
    // burst from each ring whose worker has room (shedding what the drop
    // law or the admission deadline says to), and hands the burst over
    // once the per-packet poll cost has been paid on the (serial)
    // polling core.
    let st_poll = st;
    let poller = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let now = q.now();
        let mut s = st_poll.borrow_mut();
        if s.gens_live == 0
            && s.wire_pending == 0
            && s.loss_pending == 0
            && s.nic.total_occupancy() == 0
        {
            // Everything generated has been delivered, dropped, or given
            // up on; stop polling so runs can drain to an empty queue.
            return None;
        }
        let extra = match m.chaos_rx_poll_fate() {
            // The poll visit itself is lost: the rings keep aging.
            None => return Some(now + poll_interval),
            Some(d) => d,
        };
        if let Some(dur) = m.chaos_indirection_stick(now) {
            wedge_indirection(q, &st_poll, &mut s, dur);
        }
        // Per-class admission resync, once per poll round: each class's
        // in-service backlog is what was handed to workers and has
        // neither completed nor been shed by the runqueue AQM — divided
        // by the worker count, because the class law predicts a single
        // queue draining at the class's per-request estimate while the
        // machine drains RSS-spread backlog on all workers in parallel.
        // Admits later this round grow it via `note_admitted`, so a
        // batch admitted at ring 0 is already backlog for ring 3.
        let classed = s.admission.as_ref().is_some_and(|a| a.has_classes());
        if classed {
            let workers = s.handed.len().max(1) as u64;
            if let Some(adm) = s.admission.as_mut() {
                for c in 0..MAX_CLASSES {
                    let done = m.stats.completed_by_class[c] + m.stats.rq_sheds_by_class[c];
                    let backlog = m.stats.delivered_by_class[c].saturating_sub(done);
                    adm.set_class_backlog(c as u8, backlog / workers);
                }
            }
        }
        let mut worst_sojourn = Nanos::ZERO;
        let mut backpressured = false;
        for ring in 0..s.nic.n_rings() {
            m.stats.rx_occ_hist.record(s.nic.occupancy(ring) as u64);
            if let Some(sojourn) = s.nic.oldest_sojourn(ring, now) {
                worst_sojourn = worst_sojourn.max(sojourn);
            }
            if s.nic.occupancy(ring) == 0 {
                continue;
            }
            let finished = m.stats.finished_by_core.get(ring).copied().unwrap_or(0);
            let outstanding = s.handed[ring].saturating_sub(finished) as usize;
            let take = worker_depth.saturating_sub(outstanding).min(poll_batch);
            if take == 0 {
                backpressured = true;
                continue; // backpressure: leave packets in the ring
            }
            let mut batch = Vec::with_capacity(take);
            let mut shed = Vec::new();
            let k = s.nic.drain(now, ring, take, &mut batch, &mut shed);
            for pkt in shed {
                if pkt.attempt == 0 {
                    let c = class_slot(pkt.class);
                    m.stats.aqm_drops += 1;
                    m.stats.aqm_drops_by_class[c] += 1;
                    m.stats.net_in_flight -= 1;
                    m.stats.in_flight_by_class[c] -= 1;
                }
                m.note_net(now, Some(ring), NetTrace::AqmDrop);
                client_loss(q, &st_poll, &mut s, pkt);
            }
            if k == 0 {
                continue;
            }
            // Deadline-aware admission over the kept batch: a request
            // whose predicted finish (behind the worker's backlog)
            // already overruns its SLO budget is shed here, at poll
            // cost, instead of burning a worker on a doomed response.
            // The predicted start charges the ring's adaptive per-packet
            // poll cost for the NIC-side delay ahead of this packet, so
            // a perturbed poller (whose handoffs run late) sheds
            // borderline requests it can no longer save.
            let nic_cost = s.nic.poll_cost(ring);
            let mut admitted: Vec<Pkt> = Vec::with_capacity(k);
            for (_, pkt) in batch {
                let doomed = match s.admission.as_ref() {
                    // Class-aware: judged against the request's own
                    // class deadline and that class's service estimate
                    // and backlog, so a 5 ms batch SLO can never launder
                    // a doomed 200 µs request through a blended mean.
                    Some(adm) if classed => adm.should_shed_class(
                        pkt.class,
                        now + nic_cost * (admitted.len() as u64 + 1),
                        pkt.send,
                    ),
                    Some(adm) => adm.should_shed(
                        now + nic_cost * (admitted.len() as u64 + 1),
                        pkt.send,
                        outstanding + admitted.len(),
                    ),
                    None => false,
                };
                if doomed {
                    if pkt.attempt == 0 {
                        let c = class_slot(pkt.class);
                        m.stats.admission_sheds += 1;
                        m.stats.sheds_by_class[c] += 1;
                        m.stats.net_in_flight -= 1;
                        m.stats.in_flight_by_class[c] -= 1;
                    }
                    m.note_net(now, Some(ring), NetTrace::AdmissionShed);
                    // Displacement: what dooms a tight-class request is
                    // queued looser-class work, so reclaim one slot from
                    // the loosest backlog per tight-class shed — the
                    // feedback that makes the *next* request of this
                    // class admittable (batch is shed first). A shed
                    // batch request displaces nothing: no class is
                    // looser than it.
                    if classed {
                        if let Some(slo) = s.admission.as_ref().and_then(|a| a.class_slo(pkt.class))
                        {
                            m.shed_for_class(slo);
                        }
                    }
                    client_loss(q, &st_poll, &mut s, pkt);
                } else {
                    if let Some(adm) = s.admission.as_mut() {
                        // The estimate must cover the full marginal cost
                        // of a queued request, not just its service time,
                        // or every borderline admit busts its deadline.
                        if classed {
                            adm.observe_class(pkt.class, pkt.service + stack_overhead());
                            adm.note_admitted(pkt.class);
                        } else {
                            adm.observe(pkt.service + stack_overhead());
                        }
                    }
                    admitted.push(pkt);
                }
            }
            if admitted.is_empty() {
                continue;
            }
            s.handed[ring] += admitted.len() as u64;
            let handoff = s.nic.poller_admit_on(now, ring, k, extra);
            m.note_net(now, Some(ring), NetTrace::RxPoll);
            q.schedule(
                handoff,
                Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                    for pkt in admitted {
                        if pkt.attempt == 0 {
                            let c = class_slot(pkt.class);
                            m.stats.net_in_flight -= 1;
                            m.stats.in_flight_by_class[c] -= 1;
                            m.stats.net_delivered += 1;
                            m.stats.delivered_by_class[c] += 1;
                        }
                        let body = m.pooled_oneshot(pkt.service + stack_overhead());
                        // The forward wire and all queueing are physical
                        // on this path; backdating covers only the
                        // response's return transit.
                        let req = (!pkt.copy).then(|| RequestMeta {
                            arrival: pkt.send.saturating_sub(WIRE_LATENCY),
                            service: pkt.service,
                            class: pkt.class,
                        });
                        m.spawn(
                            q,
                            body,
                            SpawnOpts {
                                app: pkt.app,
                                pin: Some(ring),
                                req,
                                weight: 1024,
                                record_wakeup: false,
                            },
                        );
                    }
                }))),
            );
        }
        m.note_overload_sample(now, worst_sojourn, backpressured);
        Some(now + poll_interval)
    };
    q.schedule(
        first_at + poll_interval,
        Event::Recur(Recur(Box::new(poller))),
    );
}

/// Installs one tenant's arrival chain: a self-rescheduling Recur
/// carrying the tenant's generator, whose deliveries become wire-transit
/// events toward the shared NIC. Returns the first arrival instant, or
/// `None` when the tenant is degenerate (empty generator, or first
/// arrival at/past the horizon) and nothing was installed.
fn install_tenant_chain(
    q: &mut EventQueue<Event>,
    tenant: Tenant,
    until: Nanos,
    mut net: Option<NetProfile>,
    st: &Rc<RefCell<PlaneState>>,
) -> Option<Nanos> {
    let Tenant {
        mut gen,
        app,
        class,
    } = tenant;
    let base = q.now();
    let first = gen.next()?;
    let first_at = base + first.at;
    if first_at >= until {
        return None;
    }
    let mut pending = first;
    let mut seq: u64 = 0;
    let st_arr = st.clone();
    let hook = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let req = pending;
        // A tenant with a registered SLO class stamps it on every
        // request; otherwise the generator's service-threshold
        // classification stands.
        let req_class = class.unwrap_or(req.class);
        let fate = match net.as_mut() {
            Some(p) => p.loss.fate(),
            None => PacketFate::Deliver,
        };
        let src_port = FLOW_PORT_BASE.wrapping_add((seq % FLOW_COUNT) as u16);
        seq += 1;
        let now = q.now();
        {
            // Every offered request refills the retry budget, whatever
            // its fate — the budget tracks offered load, not successes.
            let mut s = st_arr.borrow_mut();
            if let Some(r) = s.retry.as_mut() {
                r.on_request(req_class);
            }
        }
        match fate {
            PacketFate::Drop => {
                // Lost on the wire: the datagram never reaches the NIC
                // (so it never enters the conservation ledger); the
                // client times out — or, with retries armed, resends.
                m.stats.net_dropped += 1;
                let pkt = Pkt {
                    send: now,
                    sent_at: now,
                    service: req.service,
                    class: req_class,
                    app,
                    src_port,
                    copy: false,
                    attempt: 0,
                };
                let mut s = st_arr.borrow_mut();
                client_loss(q, &st_arr, &mut s, pkt);
            }
            PacketFate::Deliver | PacketFate::Duplicate => {
                let copies = if fate == PacketFate::Duplicate {
                    m.stats.net_duplicated += 1;
                    2
                } else {
                    1
                };
                let mut s = st_arr.borrow_mut();
                for copy in 0..copies {
                    // Each datagram — the duplicate included — transits
                    // the wire independently, so copies arrive staggered.
                    let transit = wire_draw(&mut s.wire_rng);
                    s.wire_pending += 1;
                    let pkt = Pkt {
                        send: now,
                        sent_at: now,
                        service: req.service,
                        class: req_class,
                        app,
                        src_port,
                        copy: copy == 1,
                        attempt: 0,
                    };
                    let st_rx = st_arr.clone();
                    q.schedule_after(
                        transit,
                        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                            nic_rx(m, q, &st_rx, pkt);
                        }))),
                    );
                }
            }
        }
        match gen.next() {
            Some(next) => {
                let at = base + next.at;
                if at >= until {
                    st_arr.borrow_mut().gens_live -= 1;
                    None
                } else {
                    pending = next;
                    Some(at)
                }
            }
            None => {
                st_arr.borrow_mut().gens_live -= 1;
                None
            }
        }
    };
    q.schedule(first_at, Event::Recur(Recur(Box::new(hook))));
    Some(first_at)
}

/// A datagram reaches the NIC: RSS-steer it into its ring, or tail-drop
/// it if the ring is full (the client times out or retries; a dropped
/// *copy* costs nothing extra — the original is still in play). Retries
/// enter the conservation ledger as `net_generated` + `retries_spent`
/// only: they are a terminal bucket, never double-counted as delivered,
/// dropped, shed, or in flight.
fn nic_rx(m: &mut Machine, q: &mut EventQueue<Event>, st: &Rc<RefCell<PlaneState>>, pkt: Pkt) {
    let mut s = st.borrow_mut();
    s.wire_pending -= 1;
    let c = class_slot(pkt.class);
    m.stats.net_generated += 1;
    m.stats.generated_by_class[c] += 1;
    let now = q.now();
    if pkt.attempt > 0 {
        m.stats.retries_spent += 1;
        m.stats.retries_by_class[c] += 1;
        m.note_net(now, None, NetTrace::NetRetry);
    }
    // Steer by the cached flow hash (identical to `enqueue_flow`, minus
    // the repeat Toeplitz walk); the indirection lookup still reads the
    // live table, so chaos rewrites keep steering exactly as before.
    let s = &mut *s;
    let hash = s.flow_cache.hash(s.nic.hasher(), pkt.src_port);
    match s.nic.enqueue_hashed(now, hash, pkt) {
        Ok(ring) => {
            if pkt.attempt == 0 {
                m.stats.net_in_flight += 1;
                m.stats.in_flight_by_class[c] += 1;
            }
            m.note_net(now, Some(ring), NetTrace::RxEnqueue);
        }
        Err(ring) => {
            if pkt.attempt == 0 {
                m.stats.rx_ring_drops += 1;
                m.stats.rx_drops_by_class[c] += 1;
            }
            m.note_net(now, Some(ring), NetTrace::RxDrop);
            client_loss(q, st, s, pkt);
        }
    }
}

/// Schedules the client-side outcome of a lost attempt (wire loss, ring
/// tail-drop, AQM shed, or admission shed): at the attempt's timeout the
/// client either spends a retry token and resends, or gives up. Copies
/// carry no client state, so their loss costs nothing extra.
fn client_loss(
    q: &mut EventQueue<Event>,
    st: &Rc<RefCell<PlaneState>>,
    s: &mut PlaneState,
    pkt: Pkt,
) {
    if pkt.copy {
        return;
    }
    if s.retry.is_some() {
        s.loss_pending += 1;
    }
    let fires = (pkt.sent_at + s.timeout).max(q.now());
    let st2 = st.clone();
    q.schedule(
        fires,
        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
            lose_attempt(m, q, &st2, pkt);
        }))),
    );
}

/// An attempt's timeout fired. With budget and attempts remaining, the
/// request retransmits after a decorrelated-jitter backoff; otherwise
/// the client gives up and the *cumulative* wait since the original send
/// enters the latency histograms — under-reporting abandoned requests is
/// exactly the coordinated-omission trap.
fn lose_attempt(
    m: &mut Machine,
    q: &mut EventQueue<Event>,
    st: &Rc<RefCell<PlaneState>>,
    pkt: Pkt,
) {
    let mut s = st.borrow_mut();
    if s.retry.is_some() {
        s.loss_pending -= 1;
    }
    let retry_delay = s.retry.as_mut().and_then(|r| {
        let more = pkt.attempt + 1 < r.policy.max_attempts;
        (more && r.try_spend(pkt.class)).then(|| r.backoff.next_delay())
    });
    match retry_delay {
        Some(delay) => {
            s.wire_pending += 1;
            let transit = wire_draw(&mut s.wire_rng);
            let mut p = pkt;
            p.attempt += 1;
            p.sent_at = q.now() + delay;
            let st2 = st.clone();
            q.schedule_after(
                delay + transit,
                Event::Call(Call(Box::new(move |m: &mut Machine, q| {
                    nic_rx(m, q, &st2, p);
                }))),
            );
        }
        None => {
            let waited = q.now().saturating_sub(pkt.send);
            m.stats.record_timeout(pkt.class, waited, pkt.service);
        }
    }
}

/// A chaos fault wedged an RSS indirection entry: remap it onto ring 0
/// for `dur`, concentrating that entry's flows, then restore the
/// original mapping.
fn wedge_indirection(
    q: &mut EventQueue<Event>,
    st: &Rc<RefCell<PlaneState>>,
    s: &mut PlaneState,
    dur: Nanos,
) {
    let entry = (s.stick_seq.wrapping_mul(67) % INDIRECTION_ENTRIES as u64) as usize;
    s.stick_seq += 1;
    let mut table = *s.nic.hasher().indirection();
    let old = table[entry];
    table[entry] = 0;
    s.nic.hasher_mut().set_indirection(table);
    let st2 = st.clone();
    q.schedule_after(
        dur,
        Event::Call(Call(Box::new(move |_m: &mut Machine, _q| {
            let mut s = st2.borrow_mut();
            let mut table = *s.nic.hasher().indirection();
            table[entry] = old;
            s.nic.hasher_mut().set_indirection(table);
        }))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::{CentralizedFcfs, GlobalFifo};
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    #[test]
    fn dispersive_mean_matches_paper() {
        // 0.995 * 4us + 0.005 * 10ms = 53.98 us.
        assert!((dispersive().mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn open_loop_drives_centralized_machine() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            50_000.0,
            Distribution::Constant(Nanos::from_us(10)),
            Nanos::from_us(100),
            9,
        );
        install_open_loop(&mut q, gen, 0, Placement::Queue, Nanos::from_ms(20));
        m.run(&mut q, Nanos::from_ms(40));
        // ~50k rps for 20 ms = ~1000 requests.
        assert!(
            (800..1200).contains(&(m.stats.completed as usize)),
            "completed {}",
            m.stats.completed
        );
        // Response includes the round-trip wire charge: an uncontended
        // 10 us request takes at least 10 us + 2 us of wire.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 12_000, "p50 {p50}");
    }

    #[test]
    fn lossy_net_accounts_timeouts_in_the_tail() {
        let build = || {
            let cfg = MachineConfig {
                plat: Platform::skyloft_centralized(Topology::single(5)),
                n_workers: 4,
                seed: 3,
                core_alloc: None,
                utimer_period: None,
            };
            let mut m = Machine::new(
                cfg,
                Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
            );
            m.add_app("lc", AppKind::Lc);
            let mut q = EventQueue::new();
            m.start(&mut q);
            (m, q)
        };
        let gen = || {
            OpenLoop::new(
                50_000.0,
                Distribution::Constant(Nanos::from_us(10)),
                Nanos::from_us(100),
                9,
            )
        };
        let timeout = Nanos::from_ms(1);
        let (mut lossy, mut q) = build();
        install_open_loop_net(
            &mut q,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            Some(NetProfile::lossy(4, 0.10, 0.05, timeout)),
        );
        lossy.run(&mut q, Nanos::from_ms(40));
        assert!(
            lossy.stats.net_dropped > 50,
            "drops {}",
            lossy.stats.net_dropped
        );
        assert!(
            lossy.stats.net_duplicated > 20,
            "dups {}",
            lossy.stats.net_duplicated
        );
        assert_eq!(
            lossy.stats.timeouts, lossy.stats.net_dropped,
            "every drop surfaces as a timeout sample"
        );
        // Timeouts sit in the histogram at the timeout value, so the tail
        // reflects the loss instead of silently excluding it.
        let (mut clean, mut q2) = build();
        install_open_loop_net(
            &mut q2,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            None,
        );
        clean.run(&mut q2, Nanos::from_ms(40));
        assert_eq!(clean.stats.timeouts, 0);
        let lossy_count = lossy.stats.resp_hist.count();
        assert_eq!(
            lossy_count,
            lossy.stats.completed + lossy.stats.timeouts,
            "histogram denominator = completions + timeouts"
        );
        assert!(
            lossy.stats.resp_hist.percentile(99.0) >= timeout.0,
            "p99 {} should be dominated by {} ns timeouts",
            lossy.stats.resp_hist.percentile(99.0),
            timeout.0
        );
        assert!(clean.stats.resp_hist.percentile(99.0) < timeout.0 / 2);
    }

    #[test]
    fn duplicates_run_but_do_not_complete_twice() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            20_000.0,
            Distribution::Constant(Nanos::from_us(5)),
            Nanos::from_us(100),
            21,
        );
        // Duplicate every single datagram.
        install_open_loop_net(
            &mut q,
            gen,
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            Some(NetProfile::lossy(5, 0.0, 1.0, Nanos::from_ms(1))),
        );
        m.run(&mut q, Nanos::from_ms(40));
        assert!(m.stats.completed > 300, "completed {}", m.stats.completed);
        assert_eq!(
            m.stats.net_duplicated, m.stats.completed,
            "every request was duplicated exactly once"
        );
        // Copies burn server time (~2x busy) but never enter the
        // histograms: the client keeps only the first response.
        assert_eq!(m.stats.resp_hist.count(), m.stats.completed);
        let busy: u64 = m.stats.busy_by_app.iter().sum();
        let expected = 2 * m.stats.completed * Nanos::from_us(5).0;
        assert!(
            busy as f64 > 0.9 * expected as f64,
            "busy {busy} vs 2x-work expectation {expected}"
        );
    }

    #[test]
    fn rss_placement_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(&mut q, gen, 0, Placement::Rss { n: 4 }, Nanos::from_ms(10));
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Response includes both wire transits (~2 us), the service
        // (2 us), the worker stack overhead, and the poll pipeline.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 4_400, "p50 {p50}");
        // Nothing was lost: at this load the rings never fill.
        assert_eq!(m.stats.rx_ring_drops, 0);
        assert_eq!(m.stats.net_generated, m.stats.net_delivered);
        assert_eq!(m.stats.net_in_flight, 0);
    }

    #[test]
    fn rss_direct_placement_still_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(
            &mut q,
            gen,
            0,
            Placement::RssDirect { n: 4 },
            Nanos::from_ms(10),
        );
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Teleport path: service + per-request overhead + 2x wire
        // backdate, no rings involved.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 4_530, "p50 {p50}");
        assert_eq!(m.stats.net_generated, 0, "no NIC on the direct path");
    }

    /// Conservation invariant #8: every datagram the NIC ever saw is in
    /// exactly one terminal or transient bucket.
    fn assert_ledger(s: &skyloft::stats::Stats) {
        assert_eq!(
            s.net_generated,
            s.net_delivered
                + s.rx_ring_drops
                + s.aqm_drops
                + s.admission_sheds
                + s.net_in_flight
                + s.retries_spent,
            "ledger: gen {} != del {} + ring {} + aqm {} + adm {} + infl {} + retry {}",
            s.net_generated,
            s.net_delivered,
            s.rx_ring_drops,
            s.aqm_drops,
            s.admission_sheds,
            s.net_in_flight,
            s.retries_spent,
        );
    }

    #[test]
    fn overload_control_preserves_goodput_at_2x() {
        let slo = Nanos::from_us(200);
        let run = |ctl: OverloadControl| {
            let cfg = MachineConfig {
                plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
                n_workers: 4,
                seed: 3,
                core_alloc: None,
                utimer_period: None,
            };
            let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
            m.add_app("kv", AppKind::Lc);
            let mut q = EventQueue::new();
            m.start(&mut q);
            // 4 workers x 2 us service saturate at 2M rps; offer 4M.
            let gen = OpenLoop::new(
                4_000_000.0,
                Distribution::Constant(Nanos::from_us(2)),
                Nanos::from_us(100),
                10,
            );
            let mut nic = NicConfig::for_workers(4);
            nic.client_timeout = Nanos::from_ms(1);
            install_open_loop_ctl(&mut q, gen, 0, nic, Nanos::from_ms(10), None, ctl);
            m.run(&mut q, Nanos::from_ms(40));
            m
        };
        // The admission deadline carries headroom below the client SLO:
        // its backlog model covers ring wait + worker queue, so the slack
        // absorbs what it cannot see (poll handoff, return wire,
        // scheduling jitter). Shedding at 75% of the budget keeps every
        // admitted request comfortably inside the real deadline.
        let mut ctl = OverloadControl::full();
        ctl.admission = Some(skyloft_net::AdmissionConfig {
            slo: Nanos(slo.0 * 3 / 4),
            ..Default::default()
        });
        let on = run(ctl);
        let off = run(OverloadControl::default());
        assert_ledger(&on.stats);
        assert_ledger(&off.stats);
        assert_eq!(on.stats.net_in_flight, 0, "drained by end of run");
        assert!(on.stats.aqm_drops > 0, "CoDel never shed at 2x overload");
        // Tail-drop keeps full 256-deep rings: ~512 us of head sojourn,
        // so nearly nothing finishes inside a 200 us SLO. The controller
        // sheds early, keeps sojourns near the CoDel target, and most of
        // what it serves is good.
        let good_on = on.stats.served_hist.count_le(slo.0);
        let good_off = off.stats.served_hist.count_le(slo.0);
        assert!(
            good_on > 5_000,
            "controller-on goodput collapsed: {good_on} within SLO of {} served",
            on.stats.served_hist.count()
        );
        assert!(
            good_on > 10 * good_off.max(1),
            "controller must beat tail-drop: on {good_on} vs off {good_off}"
        );
        // Early shedding, not extra capacity: the controller serves fewer
        // requests overall but finishes what it admits inside the SLO.
        let p99_on = on.stats.served_hist.percentile(99.0);
        assert!(
            p99_on < 2 * slo.0,
            "served p99 {p99_on} should hug the SLO with AQM on"
        );
    }

    #[test]
    fn tenants_share_one_plane_and_shed_batch_first() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("lc", AppKind::Lc);
        m.add_app("batch", AppKind::Lc);
        // The full class stack: registered SLO classes, the runqueue AQM
        // (batch's 5 ms SLO makes it the sheddable class), and per-class
        // deadline admission at the polling core.
        m.set_slo_class(
            0,
            skyloft::conf::SloClass::latency_critical(Nanos::from_us(200)),
        );
        m.set_slo_class(1, skyloft::conf::SloClass::batch(Nanos::from_ms(5)));
        // Microsecond-scale services need a tighter CoDel interval than
        // the default: the shed rate scales as sqrt(count)/interval, and
        // at ~1M rps a 500 us interval cannot shed excess batch work as
        // fast as it arrives.
        m.set_runqueue_aqm(skyloft::conf::RunqueueAqmConfig {
            interval: Nanos::from_us(100),
            ..Default::default()
        });
        let mut q = EventQueue::new();
        m.start(&mut q);
        // LC: 2 us requests at half the machine's work capacity (2 of 4
        // cores). Batch: 50 us requests worth 6 cores of demand, so the
        // mix offers ~2x total utilization.
        let lc = Tenant {
            gen: OpenLoop::new(
                1_000_000.0,
                Distribution::Constant(Nanos::from_us(2)),
                Nanos::from_us(100),
                10,
            ),
            app: 0,
            class: Some(0),
        };
        let batch = Tenant {
            gen: OpenLoop::new(
                120_000.0,
                Distribution::Constant(Nanos::from_us(50)),
                Nanos::from_us(100),
                11,
            ),
            app: 1,
            class: Some(1),
        };
        let mut adm = skyloft_net::AdmissionConfig::default();
        adm.class_slo[0] = Some(Nanos::from_us(200));
        adm.class_slo[1] = Some(Nanos::from_ms(5));
        let ctl = OverloadControl {
            codel: Some(CodelConfig::default()),
            admission: Some(adm),
            retry: None,
            retry_frac: None,
        };
        let mut nic = NicConfig::for_workers(4);
        nic.client_timeout = Nanos::from_ms(1);
        install_tenants(&mut q, vec![lc, batch], nic, Nanos::from_ms(10), None, ctl);
        m.run(&mut q, Nanos::from_ms(60));
        let s = &m.stats;
        assert_ledger(s);
        assert_eq!(s.net_in_flight, 0, "drained by end of run");
        // Attribution: the class arrays must sum to the global counters,
        // and each tenant's traffic lands in its own class slot.
        assert_eq!(s.generated_by_class.iter().sum::<u64>(), s.net_generated);
        assert_eq!(s.delivered_by_class.iter().sum::<u64>(), s.net_delivered);
        assert_eq!(s.sheds_by_class.iter().sum::<u64>(), s.admission_sheds);
        assert!(
            s.generated_by_class[0] > 5_000,
            "{:?}",
            s.generated_by_class
        );
        assert!(s.generated_by_class[1] > 100, "{:?}", s.generated_by_class);
        // Both apps did real work under their own accounting.
        assert!(m.stats.busy_by_app[0] > 0 && m.stats.busy_by_app[1] > 0);
        // Graceful degradation: overload is paid by the loose-SLO batch
        // class, not the latency-critical one. With the live-class queue
        // cap, admission sheds batch at the NIC before a deep runqueue
        // forms; the scheduler-side AQM is the backstop for transients,
        // and whenever it does fire its victims are batch-only — LC's
        // tighter SLO keeps it off the victim list entirely.
        assert!(
            s.sheds_by_class[1] + s.rq_sheds_by_class[1] > 0,
            "no batch request was ever shed at 2x overload"
        );
        assert_eq!(
            s.rq_sheds_by_class[0], 0,
            "the latency-critical class must never be scheduler-shed"
        );
        assert_eq!(s.rq_sheds_by_class[1], s.rq_sheds);
        let lost = |c: usize| {
            s.sheds_by_class[c]
                + s.rx_drops_by_class[c]
                + s.aqm_drops_by_class[c]
                + s.rq_sheds_by_class[c]
        };
        let lc_loss_frac = lost(0) as f64 / s.generated_by_class[0] as f64;
        let batch_loss_frac = lost(1) as f64 / s.generated_by_class[1].max(1) as f64;
        assert!(
            s.delivered_by_class[0] as f64 > 0.80 * s.generated_by_class[0] as f64,
            "LC starved: {} of {} delivered (lost {:.3})",
            s.delivered_by_class[0],
            s.generated_by_class[0],
            lc_loss_frac,
        );
        assert!(
            batch_loss_frac > lc_loss_frac,
            "batch was not shed first: batch {batch_loss_frac:.3} vs lc {lc_loss_frac:.3}"
        );
        // LC completions actually completed, under the LC app.
        assert!(
            s.completed_by_class[0] > 5_000,
            "lc completions {}",
            s.completed_by_class[0]
        );
    }

    #[test]
    fn zero_rate_tenants_install_nothing() {
        let build = || {
            let cfg = MachineConfig {
                plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
                n_workers: 4,
                seed: 3,
                core_alloc: None,
                utimer_period: None,
            };
            let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
            m.add_app("kv", AppKind::Lc);
            let mut q = EventQueue::new();
            m.start(&mut q);
            (m, q)
        };
        let tenant = |rate: f64| Tenant {
            gen: OpenLoop::new(
                rate,
                Distribution::Constant(Nanos::from_us(2)),
                Nanos::from_us(100),
                10,
            ),
            app: 0,
            class: Some(0),
        };
        // A zero-rate co-tenant (the degenerate sweep point) is skipped;
        // the live tenant still runs.
        let (mut m, mut q) = build();
        install_tenants(
            &mut q,
            vec![tenant(0.0), tenant(200_000.0)],
            NicConfig::for_workers(4),
            Nanos::from_ms(10),
            None,
            OverloadControl::default(),
        );
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1_500, "completed {}", m.stats.completed);
        // All tenants degenerate: nothing installs, nothing runs, and
        // nothing panics.
        let (mut m, mut q) = build();
        install_tenants(
            &mut q,
            vec![tenant(0.0), tenant(0.0)],
            NicConfig::for_workers(4),
            Nanos::from_ms(10),
            None,
            OverloadControl::default(),
        );
        m.run(&mut q, Nanos::from_ms(20));
        assert_eq!(m.stats.completed, 0);
        assert_eq!(m.stats.net_generated, 0);
    }

    #[test]
    fn retry_budget_recovers_losses_within_bound() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        // Well below saturation, but a lossy wire drops 10% of requests.
        let gen = OpenLoop::new(
            500_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        let ctl = OverloadControl {
            retry: Some(RetryPolicy::default()),
            ..OverloadControl::default()
        };
        install_open_loop_ctl(
            &mut q,
            gen,
            0,
            NicConfig::for_workers(4),
            Nanos::from_ms(10),
            Some(NetProfile::lossy(4, 0.10, 0.0, Nanos::from_ms(1))),
            ctl,
        );
        m.run(&mut q, Nanos::from_ms(60));
        let s = &m.stats;
        assert_ledger(s);
        assert_eq!(s.net_in_flight, 0);
        assert!(s.net_dropped > 100, "wire drops {}", s.net_dropped);
        assert!(s.retries_spent > 0, "no retries despite 10% loss");
        // Retries turn most wire losses into (slow) completions instead
        // of timeouts.
        assert!(
            s.timeouts < s.net_dropped / 2,
            "retries recovered too little: {} timeouts of {} drops",
            s.timeouts,
            s.net_dropped
        );
        // The retry budget is a hard bound: spent retries never exceed
        // 10% of offered load plus the burst allowance.
        let offered = s.net_dropped + (s.net_generated - s.retries_spent);
        let policy = RetryPolicy::default();
        let bound = (offered * u64::from(policy.budget_permille)) / 1000
            + u64::from(policy.budget_burst)
            + 1;
        assert!(
            s.retries_spent <= bound,
            "budget breached: {} retries > bound {bound}",
            s.retries_spent
        );
    }

    #[test]
    fn overloaded_rings_drop_and_bound_the_backlog() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        // 4 workers x 2 us service saturate at 2M rps; offer 4M.
        let gen = OpenLoop::new(
            4_000_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        let mut nic = NicConfig::for_workers(4);
        nic.client_timeout = Nanos::from_ms(1);
        install_open_loop_nic(&mut q, gen, 0, nic, Nanos::from_ms(10), None);
        m.run(&mut q, Nanos::from_ms(30));
        let s = &m.stats;
        assert!(s.rx_ring_drops > 0, "2x overload must tail-drop");
        assert_eq!(
            s.net_generated,
            s.net_delivered + s.rx_ring_drops + s.net_in_flight,
            "datagram conservation"
        );
        assert_eq!(s.net_in_flight, 0, "drained by end of run");
        assert_eq!(
            s.timeouts, s.rx_ring_drops,
            "every ring-dropped original times out at the client"
        );
        // Bounded rings bound the tail: nothing waits longer than the
        // client timeout plus slack for the in-ring + in-service path.
        let p999 = s.resp_hist.percentile(99.9);
        assert!(
            p999 <= Nanos::from_ms(1).0 + 100_000,
            "p99.9 {p999} not bounded by the client timeout"
        );
        // Occupancy telemetry saw the rings fill.
        assert!(
            s.rx_occ_hist.max() >= 200,
            "occ max {}",
            s.rx_occ_hist.max()
        );
    }
}
