//! Open-loop synthetic workloads (§5.2, Figure 7).
//!
//! The dispersive workload follows the ghOSt paper's setup, reused by
//! Skyloft: 99.5% short requests of 4 μs and 0.5% long requests of 10 ms,
//! arriving as a Poisson process. Requests run as one-shot tasks on the
//! machine; this module turns an [`OpenLoop`] generator into a
//! self-rescheduling chain of simulation events.

use skyloft::machine::{Call, Event, Machine};
use skyloft::task::{OneShot, RequestMeta};
use skyloft::SpawnOpts;
use skyloft_net::loadgen::OpenLoop;
use skyloft_net::rss::RssHasher;
use skyloft_sim::{Distribution, EventQueue, Nanos};

/// The §5.2 dispersive service-time distribution.
pub fn dispersive() -> Distribution {
    Distribution::Bimodal {
        p_long: 0.005,
        short: Nanos::from_us(4),
        long: Nanos::from_ms(10),
    }
}

/// Class threshold separating short from long requests for dispersive
/// workloads.
pub fn dispersive_threshold() -> Nanos {
    Nanos::from_us(100)
}

/// How arriving requests are placed onto cores.
#[derive(Clone)]
pub enum Placement {
    /// No placement hint: the policy decides (centralized queues).
    Queue,
    /// RSS-hash each request's flow onto one of `n` worker cores
    /// (kernel-bypass NIC path, §3.5). The per-request network overhead is
    /// added to the executed segment (but not to the recorded service time
    /// used for slowdown).
    Rss {
        /// Worker (ring) count.
        n: usize,
    },
}

/// Installs an open-loop arrival process into the machine: each generated
/// request spawns a one-shot task of its service time for application
/// `app`; generation stops at `until` (virtual time).
pub fn install_open_loop(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
) {
    let base = q.now();
    let rss = match &placement {
        Placement::Rss { n } => Some(RssHasher::new(*n)),
        Placement::Queue => None,
    };
    schedule_next(q, gen, app, rss, base, until, 0);
}

fn schedule_next(
    q: &mut EventQueue<Event>,
    mut gen: OpenLoop,
    app: usize,
    rss: Option<RssHasher>,
    base: Nanos,
    until: Nanos,
    seq: u64,
) {
    let Some(req) = gen.next() else { return };
    let at = base + req.at;
    if at >= until {
        return;
    }
    q.schedule(
        at,
        Event::Call(Call(Box::new(move |m: &mut Machine, q| {
            let (pin, overhead) = match &rss {
                Some(h) => {
                    // Model a distinct client flow per request (varying
                    // source port), hashed by the NIC onto a worker ring.
                    let src_port = 20_000u16.wrapping_add((seq % 20_000) as u16);
                    let core = h.ring_for_flow(0x0a00_0001, 0x0a00_0002, src_port, 11_211);
                    (Some(core), skyloft_net::nic::per_request_overhead())
                }
                None => (None, Nanos::ZERO),
            };
            let meta = RequestMeta {
                arrival: q.now(),
                service: req.service,
                class: req.class,
            };
            m.spawn(
                q,
                Box::new(OneShot::new(req.service + overhead)),
                SpawnOpts {
                    app,
                    pin,
                    req: Some(meta),
                    weight: 1024,
                    record_wakeup: false,
                },
            );
            schedule_next(q, gen, app, rss, base, until, seq + 1);
        }))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::{CentralizedFcfs, GlobalFifo};
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    #[test]
    fn dispersive_mean_matches_paper() {
        // 0.995 * 4us + 0.005 * 10ms = 53.98 us.
        assert!((dispersive().mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn open_loop_drives_centralized_machine() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            50_000.0,
            Distribution::Constant(Nanos::from_us(10)),
            Nanos::from_us(100),
            9,
        );
        install_open_loop(&mut q, gen, 0, Placement::Queue, Nanos::from_ms(20));
        m.run(&mut q, Nanos::from_ms(40));
        // ~50k rps for 20 ms = ~1000 requests.
        assert!(
            (800..1200).contains(&(m.stats.completed as usize)),
            "completed {}",
            m.stats.completed
        );
    }

    #[test]
    fn rss_placement_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(&mut q, gen, 0, Placement::Rss { n: 4 }, Nanos::from_ms(10));
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Response includes the modeled network overhead.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 2_530, "p50 {p50}");
    }
}
