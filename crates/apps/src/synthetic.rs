//! Open-loop synthetic workloads (§5.2, Figure 7).
//!
//! The dispersive workload follows the ghOSt paper's setup, reused by
//! Skyloft: 99.5% short requests of 4 μs and 0.5% long requests of 10 ms,
//! arriving as a Poisson process. Requests run as one-shot tasks on the
//! machine; this module turns an [`OpenLoop`] generator into a
//! self-rescheduling chain of simulation events.

use skyloft::machine::{Call, Event, Machine, Recur};
use skyloft::task::RequestMeta;
use skyloft::SpawnOpts;
use skyloft_net::loadgen::{NetProfile, OpenLoop};
use skyloft_net::nic::PacketFate;
use skyloft_net::rss::RssHasher;
use skyloft_sim::{Distribution, EventQueue, Nanos};

/// The §5.2 dispersive service-time distribution.
pub fn dispersive() -> Distribution {
    Distribution::Bimodal {
        p_long: 0.005,
        short: Nanos::from_us(4),
        long: Nanos::from_ms(10),
    }
}

/// Class threshold separating short from long requests for dispersive
/// workloads.
pub fn dispersive_threshold() -> Nanos {
    Nanos::from_us(100)
}

/// How arriving requests are placed onto cores.
#[derive(Clone)]
pub enum Placement {
    /// No placement hint: the policy decides (centralized queues).
    Queue,
    /// RSS-hash each request's flow onto one of `n` worker cores
    /// (kernel-bypass NIC path, §3.5). The per-request network overhead is
    /// added to the executed segment (but not to the recorded service time
    /// used for slowdown).
    Rss {
        /// Worker (ring) count.
        n: usize,
    },
}

/// Installs an open-loop arrival process into the machine: each generated
/// request spawns a one-shot task of its service time for application
/// `app`; generation stops at `until` (virtual time).
pub fn install_open_loop(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
) {
    install_open_loop_net(q, gen, app, placement, until, None);
}

/// [`install_open_loop`] with an optional lossy network: each request
/// datagram draws a fate from the profile's [`skyloft_net::LossModel`].
/// Dropped requests never reach the server; the client times out and the
/// request is *recorded at the timeout value* in the latency histograms
/// (`stats.timeouts`, `stats.net_dropped`) — excluding it would understate
/// the tail exactly when the system is misbehaving. Duplicated requests
/// cost the server a second execution whose response is discarded
/// (`stats.net_duplicated`).
pub fn install_open_loop_net(
    q: &mut EventQueue<Event>,
    gen: OpenLoop,
    app: usize,
    placement: Placement,
    until: Nanos,
    net: Option<NetProfile>,
) {
    let base = q.now();
    let rss = match &placement {
        Placement::Rss { n } => Some(RssHasher::new(*n)),
        Placement::Queue => None,
    };
    schedule_next(q, gen, app, rss, base, until, net);
}

fn schedule_next(
    q: &mut EventQueue<Event>,
    mut gen: OpenLoop,
    app: usize,
    rss: Option<RssHasher>,
    base: Nanos,
    until: Nanos,
    mut net: Option<NetProfile>,
) {
    let Some(first) = gen.next() else { return };
    let first_at = base + first.at;
    if first_at >= until {
        return;
    }
    // One self-rescheduling closure carries the generator for the whole
    // run: each firing delivers the pending request, draws the next
    // arrival, and returns its time so the machine re-schedules the same
    // box — the arrival chain allocates once, not once per request.
    let mut pending = first;
    let mut seq: u64 = 0;
    let hook = move |m: &mut Machine, q: &mut EventQueue<Event>| {
        let req = pending;
        let fate = match net.as_mut() {
            Some(p) => p.loss.fate(),
            None => PacketFate::Deliver,
        };
        let (pin, overhead) = match &rss {
            Some(h) => {
                // Model a distinct client flow per request (varying
                // source port), hashed by the NIC onto a worker ring.
                let src_port = 20_000u16.wrapping_add((seq % 20_000) as u16);
                let core = h.ring_for_flow(0x0a00_0001, 0x0a00_0002, src_port, 11_211);
                (Some(core), skyloft_net::nic::per_request_overhead())
            }
            None => (None, Nanos::ZERO),
        };
        seq += 1;
        match fate {
            PacketFate::Drop => {
                // The request never reaches the server; the client
                // learns at its timeout and the sample enters the
                // histograms at that value.
                m.stats.net_dropped += 1;
                let timeout = net.as_ref().expect("drop implies profile").timeout;
                let class = req.class;
                let service = req.service;
                q.schedule_after(
                    timeout,
                    Event::Call(Call(Box::new(move |m: &mut Machine, _q| {
                        m.stats.record_timeout(class, timeout, service);
                    }))),
                );
            }
            PacketFate::Deliver | PacketFate::Duplicate => {
                let meta = RequestMeta {
                    arrival: q.now(),
                    service: req.service,
                    class: req.class,
                };
                let body = m.pooled_oneshot(req.service + overhead);
                m.spawn(
                    q,
                    body,
                    SpawnOpts {
                        app,
                        pin,
                        req: Some(meta),
                        weight: 1024,
                        record_wakeup: false,
                    },
                );
                if fate == PacketFate::Duplicate {
                    // The server does the work twice; the client keeps
                    // the first response, so the copy carries no
                    // request accounting.
                    m.stats.net_duplicated += 1;
                    let body = m.pooled_oneshot(req.service + overhead);
                    m.spawn(
                        q,
                        body,
                        SpawnOpts {
                            app,
                            pin,
                            req: None,
                            weight: 1024,
                            record_wakeup: false,
                        },
                    );
                }
            }
        }
        let next = gen.next()?;
        let at = base + next.at;
        if at >= until {
            return None;
        }
        pending = next;
        Some(at)
    };
    q.schedule(first_at, Event::Recur(Recur(Box::new(hook))));
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::builtin::{CentralizedFcfs, GlobalFifo};
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::Platform;
    use skyloft_hw::Topology;

    #[test]
    fn dispersive_mean_matches_paper() {
        // 0.995 * 4us + 0.005 * 10ms = 53.98 us.
        assert!((dispersive().mean() - 53_980.0).abs() < 1.0);
    }

    #[test]
    fn open_loop_drives_centralized_machine() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_centralized(Topology::single(5)),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(
            cfg,
            Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
        );
        m.add_app("lc", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            50_000.0,
            Distribution::Constant(Nanos::from_us(10)),
            Nanos::from_us(100),
            9,
        );
        install_open_loop(&mut q, gen, 0, Placement::Queue, Nanos::from_ms(20));
        m.run(&mut q, Nanos::from_ms(40));
        // ~50k rps for 20 ms = ~1000 requests.
        assert!(
            (800..1200).contains(&(m.stats.completed as usize)),
            "completed {}",
            m.stats.completed
        );
    }

    #[test]
    fn lossy_net_accounts_timeouts_in_the_tail() {
        let build = || {
            let cfg = MachineConfig {
                plat: Platform::skyloft_centralized(Topology::single(5)),
                n_workers: 4,
                seed: 3,
                core_alloc: None,
                utimer_period: None,
            };
            let mut m = Machine::new(
                cfg,
                Box::new(CentralizedFcfs::new(Some(Nanos::from_us(30)))),
            );
            m.add_app("lc", AppKind::Lc);
            let mut q = EventQueue::new();
            m.start(&mut q);
            (m, q)
        };
        let gen = || {
            OpenLoop::new(
                50_000.0,
                Distribution::Constant(Nanos::from_us(10)),
                Nanos::from_us(100),
                9,
            )
        };
        let timeout = Nanos::from_ms(1);
        let (mut lossy, mut q) = build();
        install_open_loop_net(
            &mut q,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            Some(NetProfile::lossy(4, 0.10, 0.05, timeout)),
        );
        lossy.run(&mut q, Nanos::from_ms(40));
        assert!(
            lossy.stats.net_dropped > 50,
            "drops {}",
            lossy.stats.net_dropped
        );
        assert!(
            lossy.stats.net_duplicated > 20,
            "dups {}",
            lossy.stats.net_duplicated
        );
        assert_eq!(
            lossy.stats.timeouts, lossy.stats.net_dropped,
            "every drop surfaces as a timeout sample"
        );
        // Timeouts sit in the histogram at the timeout value, so the tail
        // reflects the loss instead of silently excluding it.
        let (mut clean, mut q2) = build();
        install_open_loop_net(
            &mut q2,
            gen(),
            0,
            Placement::Queue,
            Nanos::from_ms(20),
            None,
        );
        clean.run(&mut q2, Nanos::from_ms(40));
        assert_eq!(clean.stats.timeouts, 0);
        let lossy_count = lossy.stats.resp_hist.count();
        assert_eq!(
            lossy_count,
            lossy.stats.completed + lossy.stats.timeouts,
            "histogram denominator = completions + timeouts"
        );
        assert!(
            lossy.stats.resp_hist.percentile(99.0) >= timeout.0,
            "p99 {} should be dominated by {} ns timeouts",
            lossy.stats.resp_hist.percentile(99.0),
            timeout.0
        );
        assert!(clean.stats.resp_hist.percentile(99.0) < timeout.0 / 2);
    }

    #[test]
    fn rss_placement_spreads_work() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(4), 100_000),
            n_workers: 4,
            seed: 3,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(GlobalFifo::new()));
        m.add_app("kv", AppKind::Lc);
        let mut q = EventQueue::new();
        m.start(&mut q);
        let gen = OpenLoop::new(
            200_000.0,
            Distribution::Constant(Nanos::from_us(2)),
            Nanos::from_us(100),
            10,
        );
        install_open_loop(&mut q, gen, 0, Placement::Rss { n: 4 }, Nanos::from_ms(10));
        m.run(&mut q, Nanos::from_ms(20));
        assert!(m.stats.completed > 1500, "completed {}", m.stats.completed);
        // Response includes the modeled network overhead.
        let p50 = m.stats.resp_hist.percentile(50.0);
        assert!(p50 >= 2_530, "p50 {p50}");
    }
}
