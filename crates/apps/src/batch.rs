//! The best-effort batch application co-located with the LC workload in
//! §5.2 (Figures 7b/7c).
//!
//! Under a *centralized* LC policy the framework manages the batch
//! application directly (one machine-owned spin task per core, granted and
//! revoked by the Shenango-style allocator — see `Machine::add_app` with
//! [`skyloft::AppKind::Be`]). Under a *per-CPU* policy (the Linux CFS
//! comparison), the batch application is ordinary low-weight tasks that the
//! fair scheduler time-shares; this module spawns those.

use skyloft::machine::{Event, Machine, Spin};
use skyloft::SpawnOpts;
use skyloft_sim::{EventQueue, Nanos};

/// Linux weight of a nice-19 task (the batch priority in the ghOSt-style
/// co-location experiments).
pub const NICE19_WEIGHT: u32 = 15;

/// Spawns one low-weight infinite spin task per worker core into `app`
/// (per-CPU policies only). Returns the number of tasks spawned.
pub fn spawn_percpu_batch(
    m: &mut Machine,
    q: &mut EventQueue<Event>,
    app: usize,
    chunk: Nanos,
    weight: u32,
) -> usize {
    let cores = m.worker_cores.clone();
    for &core in &cores {
        m.spawn(
            q,
            Box::new(Spin::new(chunk)),
            SpawnOpts {
                app,
                pin: Some(core),
                req: None,
                weight,
                record_wakeup: false,
            },
        );
    }
    cores.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::machine::{AppKind, MachineConfig};
    use skyloft::{Platform, SchedParams};
    use skyloft_hw::Topology;
    use skyloft_policies::Cfs;

    #[test]
    fn cfs_time_shares_batch_with_lc() {
        let cfg = MachineConfig {
            plat: Platform::skyloft_percpu(Topology::single(2), 100_000),
            n_workers: 2,
            seed: 5,
            core_alloc: None,
            utimer_period: None,
        };
        let mut m = Machine::new(cfg, Box::new(Cfs::new(SchedParams::SKYLOFT_CFS)));
        let lc = m.add_app("lc", AppKind::Lc);
        let be = m.add_app("batch", AppKind::Be);
        let mut q = EventQueue::new();
        m.start(&mut q);
        spawn_percpu_batch(&mut m, &mut q, be, Nanos::from_us(50), NICE19_WEIGHT);
        // LC requests arrive while batch spins.
        for i in 0..200 {
            let at = Nanos::from_us(50 * i);
            q.schedule(
                at,
                Event::Call(skyloft::Call(Box::new(move |m, q| {
                    m.spawn_request(q, 0, Nanos::from_us(20), 0, None);
                }))),
            );
        }
        m.run(&mut q, Nanos::from_ms(20));
        assert_eq!(m.stats.completed, 200);
        let now = q.now();
        let lc_share = m.app_share(lc, now);
        let be_share = m.app_share(be, now);
        // Batch soaks up the slack; LC work (200 × 20 us over 2 cores ×
        // 20 ms) is ~10%.
        assert!(be_share > 0.5, "batch share {be_share}");
        assert!(lc_share > 0.05, "lc share {lc_share}");
        // LC requests are not starved by the spinning batch: CFS's weight
        // ratio (1024 vs 15) preempts batch quickly.
        let p99 = m.stats.resp_hist.percentile(99.0);
        assert!(p99 < 1_000_000, "LC p99 {p99} under batch co-location");
    }
}
