//! Differential + stress tests for the lock-free runqueue substrate
//! (ISSUE 4, satellite 1).
//!
//! Both substrates always compile (`crossbeam::deque::lockfree` and
//! `crossbeam::deque::reference`), so these tests drive the *same* scripted
//! operation sequences through the Chase-Lev deque and the mutex-backed
//! oracle side by side and demand identical answers. Single-threaded, the
//! lock-free deque is deterministic (no CAS can fail), so the comparison
//! is exact — any divergence is a real semantics bug, not a tolerance
//! issue.
//!
//! The multi-thread stress tests then check the property the runtime
//! actually depends on: every pushed task is observed by exactly one
//! dequeuer — no loss, no duplication — under concurrent owner pops and
//! stealer steals (and, for the injector, concurrent producers too).

use proptest::prelude::*;

use crossbeam::deque::{lockfree, reference, Steal};

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

// ---------------------------------------------------------------------------
// Differential: scripted single-threaded interleavings, exact equality.
// ---------------------------------------------------------------------------

proptest! {
    /// FIFO worker deque: push / owner-pop / steal / len agree op-for-op
    /// with the mutex oracle.
    #[test]
    fn fifo_deque_matches_oracle(ops in prop::collection::vec((0u8..4, 0u64..1_000_000), 1..400)) {
        let lf = lockfree::Worker::new_fifo();
        let lf_s = lf.stealer();
        let rf = reference::Worker::new_fifo();
        let rf_s = rf.stealer();
        for (op, val) in ops {
            match op {
                0 => {
                    lf.push(val);
                    rf.push(val);
                }
                1 => prop_assert_eq!(lf.pop(), rf.pop()),
                2 => {
                    // Single-threaded: no CAS contention, so the lock-free
                    // steal never returns Retry here.
                    let a = match lf_s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("uncontended steal retried"),
                    };
                    let b = match rf_s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("oracle never retries"),
                    };
                    prop_assert_eq!(a, b);
                }
                _ => {
                    prop_assert_eq!(lf.len(), rf.len());
                    prop_assert_eq!(lf.is_empty(), rf.is_empty());
                    prop_assert_eq!(lf_s.len(), rf_s.len());
                }
            }
        }
        // Drain both and compare the tails element-for-element.
        loop {
            let (a, b) = (lf.pop(), rf.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// LIFO worker deque: same script, owner takes from the bottom.
    #[test]
    fn lifo_deque_matches_oracle(ops in prop::collection::vec((0u8..3, 0u64..1_000_000), 1..400)) {
        let lf = lockfree::Worker::new_lifo();
        let lf_s = lf.stealer();
        let rf = reference::Worker::new_lifo();
        let rf_s = rf.stealer();
        for (op, val) in ops {
            match op {
                0 => {
                    lf.push(val);
                    rf.push(val);
                }
                1 => prop_assert_eq!(lf.pop(), rf.pop()),
                _ => {
                    let a = match lf_s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => panic!("uncontended steal retried"),
                    };
                    let b = match rf_s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("oracle never retries"),
                    };
                    prop_assert_eq!(a, b);
                }
            }
        }
        loop {
            let (a, b) = (lf.pop(), rf.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Injector: the sharded rings make dequeue *order* legitimately differ
    /// from the single mutexed FIFO, so the oracle comparison is multiset
    /// equality — both substrates must surface exactly the pushed elements.
    #[test]
    fn injector_matches_oracle_as_multiset(vals in prop::collection::vec(0u64..1_000_000, 1..600)) {
        let lf = lockfree::Injector::new();
        let rf = reference::Injector::new();
        for &v in &vals {
            lf.push(v);
            rf.push(v);
        }
        let mut got_lf = drain_injector_lockfree(&lf);
        let mut got_rf = drain_injector_reference(&rf);
        let mut want = vals.clone();
        got_lf.sort_unstable();
        got_rf.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(&got_lf, &want);
        prop_assert_eq!(&got_rf, &want);
        prop_assert!(lf.is_empty());
        prop_assert!(rf.is_empty());
    }
}

fn drain_injector_lockfree(inj: &lockfree::Injector<u64>) -> Vec<u64> {
    let w = lockfree::Worker::new_fifo();
    let mut out = Vec::new();
    loop {
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(v) => {
                out.push(v);
                while let Some(v) = w.pop() {
                    out.push(v);
                }
            }
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    out
}

fn drain_injector_reference(inj: &reference::Injector<u64>) -> Vec<u64> {
    let w = reference::Worker::new_fifo();
    let mut out = Vec::new();
    loop {
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(v) => {
                out.push(v);
                while let Some(v) = w.pop() {
                    out.push(v);
                }
            }
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Stress: real concurrency, exactly-once delivery.
// ---------------------------------------------------------------------------

/// 1 owner pushing + popping its Chase-Lev deque while N stealers hammer
/// the top end. Every element must be observed exactly once across all
/// participants.
#[test]
fn chase_lev_owner_vs_stealers_exactly_once() {
    const STEALERS: usize = 4;
    const ITEMS: u64 = 40_000;

    let worker = lockfree::Worker::new_fifo();
    let done = AtomicBool::new(false);

    fn thief(s: lockfree::Stealer<u64>, done: &AtomicBool) -> Vec<u64> {
        let mut got = Vec::new();
        loop {
            match s.steal() {
                Steal::Success(v) => got.push(v),
                Steal::Retry => continue,
                Steal::Empty => {
                    // Empty is only final once the owner has stopped
                    // pushing; until then, spin.
                    if done.load(Ordering::Acquire) && s.is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        got
    }

    let mut all: Vec<u64> = std::thread::scope(|scope| {
        let d = &done;
        let handles: Vec<_> = (0..STEALERS)
            .map(|_| {
                let s = worker.stealer();
                scope.spawn(move || thief(s, d))
            })
            .collect();

        // Owner: interleave pushes with occasional pops so the bottom end
        // is contended too.
        let mut mine = Vec::new();
        for i in 0..ITEMS {
            worker.push(i);
            if i % 3 == 0 {
                if let Some(v) = worker.pop() {
                    mine.push(v);
                }
            }
        }
        done.store(true, Ordering::Release);
        // Owner helps drain the rest.
        while let Some(v) = worker.pop() {
            mine.push(v);
        }

        for h in handles {
            mine.extend(h.join().unwrap());
        }
        mine
    });

    assert_eq!(all.len() as u64, ITEMS, "lost or duplicated elements");
    all.sort_unstable();
    let unique: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len() as u64, ITEMS, "duplicate delivery detected");
    assert_eq!(all.first(), Some(&0));
    assert_eq!(all.last(), Some(&(ITEMS - 1)));
}

/// M producers pushing disjoint ranges into the sharded injector while N
/// consumers batch-steal into local workers: exactly-once across the
/// rings *and* the overflow spillover path (the item count is far above
/// ring capacity, so overflow is exercised).
#[test]
fn injector_mpmc_exactly_once() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 20_000;

    let inj = lockfree::Injector::new();
    let done = AtomicBool::new(false);

    let mut all: Vec<u64> = std::thread::scope(|scope| {
        let (inj, done) = (&inj, &done);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                scope.spawn(move || {
                    let w = lockfree::Worker::new_fifo();
                    let mut got = Vec::new();
                    loop {
                        match inj.steal_batch_and_pop(&w) {
                            Steal::Success(v) => {
                                got.push(v);
                                while let Some(v) = w.pop() {
                                    got.push(v);
                                }
                            }
                            Steal::Retry => continue,
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && inj.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);

        let mut all = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all
    });

    let total = PRODUCERS * PER_PRODUCER;
    assert_eq!(all.len() as u64, total, "lost or duplicated elements");
    all.sort_unstable();
    for (i, v) in all.iter().enumerate() {
        assert_eq!(*v, i as u64, "exactly-once violated at index {i}");
    }
}
