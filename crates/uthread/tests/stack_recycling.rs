//! Stack-recycling properties that depend on the process-global
//! fresh-stack counter. Kept as ONE test in its own binary: the counter
//! is global, so assertions on its deltas must not race other tests
//! allocating stacks in parallel.

use skyloft_uthread::stack::{fresh_stack_count, Stack, StackPool};
use skyloft_uthread::{spawn, Runtime};

#[test]
fn recycled_spawns_allocate_no_stacks() {
    // --- Pool level: takes from a warm pool allocate nothing. ---
    let pool = StackPool::with_cap(8);
    let before = fresh_stack_count();
    pool.put(Stack::new());
    pool.put(Stack::new());
    assert_eq!(fresh_stack_count() - before, 2);
    let mid = fresh_stack_count();
    for _ in 0..10 {
        let s = pool.take();
        pool.put(s);
    }
    assert_eq!(fresh_stack_count(), mid, "recycled takes must not allocate");
    // Taking past the free list allocates again.
    let _a = pool.take();
    let _b = pool.take();
    let _c = pool.take();
    assert_eq!(fresh_stack_count() - mid, 1);
    drop((_a, _b, _c));

    // --- Runtime level: steady-state spawn reuses stacks through the
    // per-worker cache; after warm-up the counter must not move. ---
    let counted = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let c2 = counted.clone();
    Runtime::run(1, move || {
        // Warm-up: these may allocate fresh stacks.
        for _ in 0..32 {
            spawn(|| {}).join();
        }
        let warm = fresh_stack_count();
        // Steady state: every spawn must reuse a cached stack.
        for _ in 0..200 {
            spawn(|| {}).join();
        }
        c2.store(
            fresh_stack_count() - warm,
            std::sync::atomic::Ordering::Release,
        );
    });
    assert_eq!(
        counted.load(std::sync::atomic::Ordering::Acquire),
        0,
        "steady-state spawn allocated fresh stacks instead of recycling"
    );
}
