//! User-space synchronization: `Mutex` and `Condvar` over green threads
//! (Table 7's `Mutex` and `Condvar` rows).
//!
//! The uncontended mutex path is a single compare-and-swap — the reason
//! Table 7 shows Skyloft, Go, and pthread all around ~27 ns there. The
//! contended path blocks the *green thread* (a context switch), never the
//! OS thread.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::runtime::{current_task, switch_to_sched, wake_task};
use crate::task::{state, UTask};

/// A green-thread mutex.
///
/// The `n_waiters` mirror of the wait-list length lets the *uncontended*
/// unlock skip the wait-list lock entirely: one store + one load. The
/// SeqCst pairing closes the enqueue/unlock race — a waiter publishes
/// its count increment before re-trying the lock CAS, an unlocker
/// publishes the unlocked state before reading the count, so either the
/// unlocker sees the waiter (and pops it) or the waiter's retry CAS sees
/// the lock free (and cancels its block).
pub struct Mutex<T> {
    locked: AtomicBool,
    waiters: parking_lot::Mutex<VecDeque<Arc<UTask>>>,
    /// Mirror of `waiters.len()`, maintained under the waiters lock.
    n_waiters: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: the mutex provides the exclusion; T must be Send for the data to
// move between workers.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            locked: AtomicBool::new(false),
            waiters: parking_lot::Mutex::new(VecDeque::new()),
            n_waiters: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    // SeqCst so the acquire attempt participates in the total order that
    // the unlock fast path's count check relies on (see the type docs);
    // on x86-64 this compiles to the same `lock cmpxchg` as AcqRel.
    fn try_acquire(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    /// Attempts to lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.try_acquire() {
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Locks, blocking the calling green thread on contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        loop {
            // Fast path: one CAS.
            if self.try_acquire() {
                return MutexGuard { mutex: self };
            }
            let me = current_task();
            me.state.store(state::BLOCKING, Ordering::Release);
            {
                let mut w = self.waiters.lock();
                w.push_back(Arc::clone(&me));
                self.n_waiters.store(w.len(), Ordering::SeqCst);
            }
            fence(Ordering::SeqCst);
            // Re-check after enqueuing: the holder may have unlocked in
            // between (its pop would otherwise be our only wake).
            if self.try_acquire() {
                // Cancel the block: take ourselves out of the wait list.
                let mut w = self.waiters.lock();
                w.retain(|t| !Arc::ptr_eq(t, &me));
                self.n_waiters.store(w.len(), Ordering::SeqCst);
                drop(w);
                me.state.store(state::RUNNING, Ordering::Release);
                return MutexGuard { mutex: self };
            }
            switch_to_sched();
            // Woken by an unlock: retry the CAS.
        }
    }

    fn unlock(&self) {
        self.locked.store(false, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Uncontended fast path: no waiter count published, so skip the
        // wait-list lock — this is what keeps Table 7's mutex row at
        // "one CAS + one store + one load".
        if self.n_waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let next = {
            let mut w = self.waiters.lock();
            let next = w.pop_front();
            self.n_waiters.store(w.len(), Ordering::SeqCst);
            next
        };
        if let Some(t) = next {
            wake_task(t);
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive ownership.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// A green-thread condition variable.
///
/// Like [`Mutex`], a `n_waiters` mirror lets a notify with nobody
/// waiting return after a single atomic load. This fast path is sound
/// under the standard condvar contract (the awaited predicate is only
/// changed under the associated mutex): a waiter publishes its count
/// increment *before* releasing the mutex inside `wait`, so any notifier
/// whose predicate change the waiter missed must have acquired the mutex
/// after that release — and therefore observes the count.
#[derive(Default)]
pub struct Condvar {
    waiters: parking_lot::Mutex<VecDeque<Arc<UTask>>>,
    /// Mirror of `waiters.len()`, maintained under the waiters lock.
    n_waiters: AtomicUsize,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guard and blocks until notified; re-acquires
    /// the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let me = current_task();
        me.state.store(state::BLOCKING, Ordering::Release);
        {
            let mut w = self.waiters.lock();
            w.push_back(Arc::clone(&me));
            self.n_waiters.store(w.len(), Ordering::SeqCst);
        }
        let mutex = guard.mutex;
        drop(guard); // Unlock; wakers can now make progress.
        switch_to_sched();
        mutex.lock()
    }

    /// Wakes one waiter (Table 7's `Condvar` operation).
    pub fn notify_one(&self) {
        if self.n_waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let next = {
            let mut w = self.waiters.lock();
            let next = w.pop_front();
            self.n_waiters.store(w.len(), Ordering::SeqCst);
            next
        };
        if let Some(t) = next {
            wake_task(t);
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if self.n_waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let drained: Vec<_> = {
            let mut w = self.waiters.lock();
            let drained = w.drain(..).collect();
            self.n_waiters.store(0, Ordering::SeqCst);
            drained
        };
        for t in drained {
            wake_task(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{spawn, Runtime};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn mutex_excludes() {
        let total = Arc::new(Mutex::new(0u64));
        let t = total.clone();
        Runtime::run(4, move || {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let t = t.clone();
                    spawn(move || {
                        for _ in 0..1_000 {
                            *t.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        assert_eq!(*total.try_lock().unwrap(), 8_000);
    }

    #[test]
    fn try_lock_contended() {
        Runtime::run(1, || {
            let m = Mutex::new(5);
            let g = m.lock();
            assert!(m.try_lock().is_none());
            drop(g);
            assert_eq!(*m.try_lock().unwrap(), 5);
        });
    }

    #[test]
    fn condvar_ping_pong() {
        let rounds = Arc::new(AtomicU64::new(0));
        let r = rounds.clone();
        Runtime::run(2, move || {
            let m = Arc::new(Mutex::new(false)); // token: false=ping's turn
            let cv = Arc::new(Condvar::new());
            let (m2, cv2, r2) = (m.clone(), cv.clone(), r.clone());
            let ponger = spawn(move || {
                for _ in 0..100 {
                    let mut g = m2.lock();
                    while !*g {
                        g = cv2.wait(g);
                    }
                    *g = false;
                    r2.fetch_add(1, Ordering::Relaxed);
                    drop(g);
                    cv2.notify_one();
                }
            });
            for _ in 0..100 {
                let mut g = m.lock();
                while *g {
                    g = cv.wait(g);
                }
                *g = true;
                drop(g);
                cv.notify_one();
            }
            ponger.join();
        });
        assert_eq!(rounds.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let woke = Arc::new(AtomicU64::new(0));
        let w = woke.clone();
        Runtime::run(2, move || {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let handles: Vec<_> = (0..5)
                .map(|_| {
                    let (m, cv, w) = (m.clone(), cv.clone(), w.clone());
                    spawn(move || {
                        let mut g = m.lock();
                        while !*g {
                            g = cv.wait(g);
                        }
                        w.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            // Let the waiters block, then release them all.
            for _ in 0..50 {
                crate::runtime::yield_now();
            }
            *m.lock() = true;
            cv.notify_all();
            for h in handles {
                h.join();
            }
        });
        assert_eq!(woke.load(Ordering::Relaxed), 5);
    }
}
