//! Pooled execution stacks.
//!
//! Skyloft's 191 ns spawn (Table 7) is only possible because thread stacks
//! are recycled, not mmap'd per spawn. The pool hands out fixed-size,
//! 16-byte-aligned heap regions and takes them back on thread exit.

use std::alloc::{alloc, dealloc, Layout};

/// Stack size per user thread (64 KiB, ample for the workloads here).
pub const STACK_SIZE: usize = 64 * 1024;

/// An owned, aligned stack region.
pub struct Stack {
    base: *mut u8,
}

// SAFETY: the stack region is exclusively owned; the raw pointer is never
// aliased across threads except through the scheduler's happens-before
// edges (a task runs on one worker at a time).
unsafe impl Send for Stack {}

impl Stack {
    fn layout() -> Layout {
        Layout::from_size_align(STACK_SIZE, 16).expect("valid stack layout")
    }

    /// Allocates a fresh stack.
    pub fn new() -> Stack {
        // SAFETY: the layout is valid and non-zero-sized.
        let base = unsafe { alloc(Self::layout()) };
        assert!(!base.is_null(), "stack allocation failed");
        Stack { base }
    }

    /// One-past-the-end pointer (stacks grow down).
    pub fn top(&self) -> *mut u8 {
        // SAFETY: base + STACK_SIZE is one-past-the-end of the allocation.
        unsafe { self.base.add(STACK_SIZE) }
    }
}

impl Default for Stack {
    fn default() -> Self {
        Stack::new()
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: `base` came from `alloc` with the same layout.
        unsafe { dealloc(self.base, Self::layout()) };
    }
}

/// A lock-protected free list of stacks.
#[derive(Default)]
pub struct StackPool {
    free: parking_lot::Mutex<Vec<Stack>>,
}

impl StackPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        StackPool::default()
    }

    /// Takes a stack from the pool, allocating if empty.
    pub fn take(&self) -> Stack {
        self.free.lock().pop().unwrap_or_default()
    }

    /// Returns a stack for reuse.
    pub fn put(&self, s: Stack) {
        let mut free = self.free.lock();
        // Bound the pool so bursty spawns don't pin memory forever.
        if free.len() < 1024 {
            free.push(s);
        }
    }

    /// Number of pooled stacks.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.free.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_is_aligned_and_past_base() {
        let s = Stack::new();
        assert_eq!(s.top() as usize % 16, 0);
        assert_eq!(s.top() as usize - s.base as usize, STACK_SIZE);
    }

    #[test]
    fn pool_recycles() {
        let pool = StackPool::new();
        let a = pool.take();
        let a_base = a.base;
        pool.put(a);
        assert_eq!(pool.len(), 1);
        let b = pool.take();
        assert_eq!(b.base, a_base, "stack should be recycled");
        assert!(pool.is_empty());
    }

    #[test]
    fn stack_is_writable_end_to_end() {
        let s = Stack::new();
        // SAFETY: writing within the owned allocation.
        unsafe {
            s.base.write(0xAA);
            s.top().sub(1).write(0xBB);
            assert_eq!(s.base.read(), 0xAA);
            assert_eq!(s.top().sub(1).read(), 0xBB);
        }
    }
}
