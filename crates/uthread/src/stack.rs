//! Pooled execution stacks.
//!
//! Skyloft's 191 ns spawn (Table 7) is only possible because thread stacks
//! are recycled, not mmap'd per spawn. The pool hands out fixed-size,
//! 16-byte-aligned heap regions and takes them back on thread exit.

use std::alloc::{alloc, dealloc, Layout};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stack size per user thread (64 KiB, ample for the workloads here).
pub const STACK_SIZE: usize = 64 * 1024;

/// Stacks a [`StackPool`] retains before dropping returns outright, so a
/// spawn burst cannot pin unbounded freed memory (64 MiB at the default
/// 64 KiB stacks).
pub const DEFAULT_POOL_CAP: usize = 1024;

/// Total fresh stack allocations made by this process (see
/// [`fresh_stack_count`]).
static FRESH_STACKS: AtomicU64 = AtomicU64::new(0);

/// Number of stacks ever allocated (as opposed to recycled). Steady-state
/// spawn with a warm pool must not move this counter — the
/// `recycled_spawns_allocate_no_stacks` test pins that property.
pub fn fresh_stack_count() -> u64 {
    FRESH_STACKS.load(Ordering::Relaxed)
}

/// An owned, aligned stack region.
pub struct Stack {
    base: *mut u8,
}

// SAFETY: the stack region is exclusively owned; the raw pointer is never
// aliased across threads except through the scheduler's happens-before
// edges (a task runs on one worker at a time).
unsafe impl Send for Stack {}

impl Stack {
    fn layout() -> Layout {
        Layout::from_size_align(STACK_SIZE, 16).expect("valid stack layout")
    }

    /// Allocates a fresh stack.
    pub fn new() -> Stack {
        FRESH_STACKS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the layout is valid and non-zero-sized.
        let base = unsafe { alloc(Self::layout()) };
        assert!(!base.is_null(), "stack allocation failed");
        Stack { base }
    }

    /// One-past-the-end pointer (stacks grow down).
    pub fn top(&self) -> *mut u8 {
        // SAFETY: base + STACK_SIZE is one-past-the-end of the allocation.
        unsafe { self.base.add(STACK_SIZE) }
    }
}

impl Default for Stack {
    fn default() -> Self {
        Stack::new()
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: `base` came from `alloc` with the same layout.
        unsafe { dealloc(self.base, Self::layout()) };
    }
}

/// The shared overflow free list of stacks: a hard cap bounds retained
/// memory (excess returns drop their stack), and a high-water mark
/// records the worst case actually reached. This is the *cold* path —
/// in steady state workers recycle stacks through their private caches
/// (see `runtime::WorkerCtx`) and never take this lock.
pub struct StackPool {
    free: parking_lot::Mutex<Vec<Stack>>,
    cap: usize,
    high_water: AtomicUsize,
}

impl Default for StackPool {
    fn default() -> Self {
        StackPool::with_cap(DEFAULT_POOL_CAP)
    }
}

impl StackPool {
    /// Creates an empty pool with the default cap.
    pub fn new() -> Self {
        StackPool::default()
    }

    /// Creates an empty pool retaining at most `cap` free stacks.
    pub fn with_cap(cap: usize) -> Self {
        StackPool {
            free: parking_lot::Mutex::new(Vec::new()),
            cap,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Takes a stack from the pool, allocating if empty.
    pub fn take(&self) -> Stack {
        self.free.lock().pop().unwrap_or_default()
    }

    /// Returns a stack for reuse; at the cap the stack is freed instead,
    /// so the pool shrinks back after a burst.
    pub fn put(&self, s: Stack) {
        let mut free = self.free.lock();
        if free.len() < self.cap {
            free.push(s);
            self.high_water.fetch_max(free.len(), Ordering::Relaxed);
        }
        // Else: `s` drops here, returning the memory.
    }

    /// Retention cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Most stacks ever retained at once.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Number of pooled stacks.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.free.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_is_aligned_and_past_base() {
        let s = Stack::new();
        assert_eq!(s.top() as usize % 16, 0);
        assert_eq!(s.top() as usize - s.base as usize, STACK_SIZE);
    }

    #[test]
    fn pool_recycles() {
        let pool = StackPool::new();
        let a = pool.take();
        let a_base = a.base;
        pool.put(a);
        assert_eq!(pool.len(), 1);
        let b = pool.take();
        assert_eq!(b.base, a_base, "stack should be recycled");
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_growth_is_bounded_with_high_water_stat() {
        let pool = StackPool::with_cap(4);
        // A burst of 10 frees: only `cap` may be retained; the rest must
        // be dropped immediately (the pool "shrinks back to the cap").
        for _ in 0..10 {
            pool.put(Stack::new());
        }
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.high_water(), 4);
        assert_eq!(pool.cap(), 4);
        // Draining and re-filling below the cap leaves high-water alone.
        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.len(), 2);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.high_water(), 4);
    }

    #[test]
    fn stack_is_writable_end_to_end() {
        let s = Stack::new();
        // SAFETY: writing within the owned allocation.
        unsafe {
            s.base.write(0xAA);
            s.top().sub(1).write(0xBB);
            assert_eq!(s.base.read(), 0xAA);
            assert_eq!(s.top().sub(1).read(), 0xBB);
        }
    }
}
