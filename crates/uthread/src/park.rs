//! Eventcount-style idle-worker parking.
//!
//! Replaces the old global `idle_lock`/`idle_cv` pair (one mutex every
//! worker contended on, plus `notify_all` thundering-herd wakeups) with:
//!
//! * a single `AtomicU64` **idle bitmask** — bit `i` set means worker `i`
//!   has announced it is about to park;
//! * **per-worker parking slots** (a private mutex+condvar each) that are
//!   only touched by a worker actually going to sleep and by the single
//!   notifier that claimed it — `notify_one` wakes exactly one targeted
//!   worker, never the herd.
//!
//! # The lost-wakeup protocol
//!
//! A parking worker and a notifier race: the worker may decide "no work
//! anywhere" just as a notifier pushes a task. The protocol closes the
//! window with a pair of SeqCst fences (the eventcount idiom):
//!
//! ```text
//! worker (parking)                     notifier (after pushing work)
//! ----------------                     -----------------------------
//! W1: mask.fetch_or(bit)   [SeqCst]    N1: push task  (Release store)
//! W2: fence(SeqCst)                    N2: fence(SeqCst)
//! W3: re-scan all queues               N3: mask.load
//! W4: park on own slot                 N4: claim a bit (CAS) + unpark
//! ```
//!
//! The two fences are totally ordered. If N2 precedes W2, then N1's push
//! precedes W3's scan, so the worker finds the task and cancels the park.
//! If W2 precedes N2, then W1's bit-set precedes N3's mask load, so the
//! notifier sees the bit and unparks the worker. Either way the wakeup
//! cannot be lost. (This is the audit item previously "closed" by
//! re-checking under the global idle lock at runtime.rs:115-120; the
//! regression test for it lives in `tests::single_notify_wakes_promptly`
//! and `runtime::tests::parked_worker_wakes_on_single_notify`.)
//!
//! A notification claimed for a worker that concurrently found work on
//! its own is not lost either: it persists in the slot's `notified` flag
//! and the worker's next park returns immediately (one spurious re-scan,
//! never a sleep with work pending).

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Backstop park timeout. The fence protocol above makes lost wakeups
/// impossible by construction; the backstop turns any future protocol
/// regression into bounded latency instead of a hang — and the
/// regression tests assert wakeups arrive in a small fraction of it,
/// so the backstop cannot mask such a bug.
pub(crate) const PARK_BACKSTOP: Duration = Duration::from_millis(100);

struct Slot {
    /// `true` while a notification is pending for this worker.
    notified: parking_lot::Mutex<bool>,
    cv: parking_lot::Condvar,
}

/// Idle-worker registry: bitmask gate + per-worker parking slots.
pub(crate) struct IdleWorkers {
    mask: AtomicU64,
    slots: Vec<Slot>,
    /// Rotates which set bit `notify_one` claims, so wakeups spread over
    /// workers instead of always reviving worker 0.
    rr: AtomicUsize,
}

impl IdleWorkers {
    /// Supports up to 64 workers (one bitmask bit each).
    pub(crate) const MAX_WORKERS: usize = 64;

    pub(crate) fn new(n: usize) -> IdleWorkers {
        assert!(
            n <= Self::MAX_WORKERS,
            "at most {} workers (one idle-mask bit each)",
            Self::MAX_WORKERS
        );
        IdleWorkers {
            mask: AtomicU64::new(0),
            slots: (0..n)
                .map(|_| Slot {
                    notified: parking_lot::Mutex::new(false),
                    cv: parking_lot::Condvar::new(),
                })
                .collect(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Step W1+W2: announce intent to park. The caller MUST re-scan all
    /// runqueues after this and call [`cancel`](Self::cancel) (found
    /// work) or [`park`](Self::park) (still none) — parking without the
    /// re-scan reopens the lost-wakeup window.
    pub(crate) fn prepare(&self, worker: usize) {
        self.mask.fetch_or(1 << worker, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Revokes a [`prepare`](Self::prepare) because the re-scan found
    /// work.
    pub(crate) fn cancel(&self, worker: usize) {
        self.mask.fetch_and(!(1 << worker), Ordering::SeqCst);
    }

    /// Step W4: sleep until notified (or the backstop elapses). Consumes
    /// at most one pending notification and clears this worker's mask
    /// bit if the wake did not come from a notifier (which clears it
    /// itself when claiming the bit).
    pub(crate) fn park(&self, worker: usize) {
        let slot = &self.slots[worker];
        {
            let mut notified = slot.notified.lock();
            if !*notified {
                slot.cv.wait_for(&mut notified, PARK_BACKSTOP);
            }
            *notified = false;
        }
        // Harmless if a notifier already cleared it.
        self.mask.fetch_and(!(1 << worker), Ordering::SeqCst);
    }

    /// Steps N2–N4: wake one idle worker, if any. Call *after* making
    /// the work visible (queue push).
    pub(crate) fn notify_one(&self) {
        fence(Ordering::SeqCst);
        let start = self.rr.fetch_add(1, Ordering::Relaxed) as u32 % 64;
        loop {
            let m = self.mask.load(Ordering::SeqCst);
            if m == 0 {
                return;
            }
            // First set bit at-or-after `start`, wrapping.
            let rot = m.rotate_right(start);
            let i = (start + rot.trailing_zeros()) % 64;
            let bit = 1u64 << i;
            if self
                .mask
                .compare_exchange_weak(m, m & !bit, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.unpark(i as usize);
                return;
            }
        }
    }

    /// Wakes every worker (shutdown): clears the mask and posts a
    /// notification to all slots, so even a worker that has not yet
    /// reached its `park` returns immediately when it does.
    pub(crate) fn notify_all(&self) {
        fence(Ordering::SeqCst);
        self.mask.store(0, Ordering::SeqCst);
        for i in 0..self.slots.len() {
            self.unpark(i);
        }
    }

    fn unpark(&self, worker: usize) {
        let slot = &self.slots[worker];
        let mut notified = slot.notified.lock();
        *notified = true;
        slot.cv.notify_one();
    }

    /// Number of workers currently announced idle (advisory).
    #[cfg(test)]
    fn idle_count(&self) -> u32 {
        self.mask.load(Ordering::SeqCst).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Instant;

    /// The satellite regression test for the sleep/notify race: park a
    /// worker, wake it exactly once, and require the wakeup to arrive in
    /// a small fraction of the backstop (so a lost notification — which
    /// would surface as a backstop-timeout wake — fails the test).
    #[test]
    fn single_notify_wakes_promptly() {
        let idle = Arc::new(IdleWorkers::new(2));
        let parked = Arc::new(AtomicBool::new(false));
        let (i2, p2) = (idle.clone(), parked.clone());
        let h = std::thread::spawn(move || {
            i2.prepare(0);
            // Re-scan found nothing (no queues in this unit test).
            p2.store(true, Ordering::Release);
            let t0 = Instant::now();
            i2.park(0);
            t0.elapsed()
        });
        while !parked.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // Give the thread a moment to actually reach the condvar wait.
        std::thread::sleep(Duration::from_millis(5));
        idle.notify_one();
        let woke_after = h.join().unwrap();
        assert!(
            woke_after < PARK_BACKSTOP / 4,
            "wakeup took {woke_after:?} — notify was lost and the backstop fired"
        );
        assert_eq!(idle.idle_count(), 0);
    }

    /// One notify wakes exactly one of two parked workers; a second
    /// notify wakes the other.
    #[test]
    fn notify_one_is_targeted() {
        let idle = Arc::new(IdleWorkers::new(2));
        let woken = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let (idle, woken, ready) = (idle.clone(), woken.clone(), ready.clone());
                std::thread::spawn(move || {
                    idle.prepare(w);
                    ready.fetch_add(1, Ordering::AcqRel);
                    idle.park(w);
                    woken.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        while ready.load(Ordering::Acquire) < 2 {
            std::hint::spin_loop();
        }
        std::thread::sleep(Duration::from_millis(5));
        idle.notify_one();
        let t0 = Instant::now();
        // Exactly one wakes quickly; the other stays parked until the
        // second notify (bounded observation window well under the
        // backstop so the assertion is meaningful).
        while woken.load(Ordering::Acquire) < 1 && t0.elapsed() < PARK_BACKSTOP / 4 {
            std::hint::spin_loop();
        }
        assert_eq!(woken.load(Ordering::Acquire), 1, "notify_one woke != 1");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            woken.load(Ordering::Acquire),
            1,
            "second worker woke spuriously"
        );
        idle.notify_one();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::Acquire), 2);
    }

    /// A notification racing `prepare` is never lost: it parks the flag
    /// in the slot, and the worker's park returns immediately.
    #[test]
    fn pending_notification_short_circuits_park() {
        let idle = IdleWorkers::new(1);
        idle.prepare(0);
        idle.notify_one(); // Claims bit 0, posts the slot flag.
        let t0 = Instant::now();
        idle.park(0); // Must return without sleeping.
        assert!(t0.elapsed() < Duration::from_millis(20));
        assert_eq!(idle.mask.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancel_clears_the_bit() {
        let idle = IdleWorkers::new(3);
        idle.prepare(1);
        idle.prepare(2);
        assert_eq!(idle.idle_count(), 2);
        idle.cancel(1);
        assert_eq!(idle.mask.load(Ordering::SeqCst), 1 << 2);
        idle.cancel(2);
        assert_eq!(idle.idle_count(), 0);
        // No one parked: notify_one on an empty mask is a no-op.
        idle.notify_one();
    }

    #[test]
    fn notify_all_releases_everyone() {
        let idle = Arc::new(IdleWorkers::new(4));
        let woken = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let (idle, woken) = (idle.clone(), woken.clone());
                std::thread::spawn(move || {
                    idle.prepare(w);
                    idle.park(w);
                    woken.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        while idle.idle_count() < 4 {
            std::hint::spin_loop();
        }
        idle.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::Acquire), 4);
        assert_eq!(idle.idle_count(), 0);
    }
}
