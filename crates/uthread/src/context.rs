//! The x86-64 context switch.
//!
//! System V callee-saved registers (`rbp`, `rbx`, `r12`–`r15`) are pushed
//! onto the outgoing stack, the stack pointers are exchanged, and the
//! incoming stack's registers are popped. A new thread's stack is seeded so
//! that the first switch "returns" into [`tramp`], which calls the Rust
//! entry with the task pointer that was planted in the `r12` slot.

use core::arch::global_asm;

global_asm!(
    r#"
    .text
    .globl skyloft_ctx_switch
    .p2align 4
// fn skyloft_ctx_switch(save: *mut *mut u8 /* rdi */, restore: *mut u8 /* rsi */)
skyloft_ctx_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    mov [rdi], rsp
    mov rsp, rsi
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret

    .globl skyloft_ctx_tramp
    .p2align 4
// First activation of a new thread: rsp is 16-aligned here (the stack was
// seeded that way), so the call below leaves rsp ≡ 8 (mod 16) at the entry
// of skyloft_thread_entry, as the ABI requires.
skyloft_ctx_tramp:
    mov rdi, r12
    call skyloft_thread_entry
    ud2
"#
);

unsafe extern "C" {
    /// Saves the current context into `*save` and activates `restore`.
    pub fn skyloft_ctx_switch(save: *mut *mut u8, restore: *mut u8);
    fn skyloft_ctx_tramp();
}

/// Number of callee-saved slots below the return address.
const SAVED_REGS: usize = 6;
/// Index of the `r12` slot (popped fourth-from-last): layout from the
/// saved rsp upward is r15, r14, r13, r12, rbx, rbp, retaddr.
const R12_SLOT: usize = 3;

/// Seeds a fresh stack so the first `skyloft_ctx_switch` into it starts
/// `tramp`, which forwards `arg` (planted in r12) to
/// `skyloft_thread_entry`.
///
/// Returns the initial saved stack pointer.
///
/// # Safety
///
/// `stack_top` must be the one-past-the-end pointer of a writable stack
/// region of at least `(SAVED_REGS + 2) * 8` bytes.
pub unsafe fn seed_stack(stack_top: *mut u8, arg: *mut u8) -> *mut u8 {
    // Align down to 16 bytes; the trampoline executes with this rsp.
    let top = (stack_top as usize) & !15;
    // SAFETY: the caller guarantees the region below `stack_top` is
    // writable and large enough for the seeded frame.
    unsafe {
        let ret_slot = (top - 8) as *mut u64;
        let tramp: unsafe extern "C" fn() = skyloft_ctx_tramp;
        *ret_slot = tramp as usize as u64;
        let base = (top - 8 - SAVED_REGS * 8) as *mut u64;
        for i in 0..SAVED_REGS {
            *base.add(i) = 0;
        }
        *base.add(R12_SLOT) = arg as usize as u64;
        base as *mut u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_layout_is_aligned() {
        let mut buf = vec![0u8; 1024];
        let top = unsafe { buf.as_mut_ptr().add(1024) };
        let sp = unsafe { seed_stack(top, 0xdead as *mut u8) };
        // The seeded rsp must leave the trampoline with 16-byte alignment
        // after 6 pops + ret.
        let after_frame = sp as usize + (SAVED_REGS + 1) * 8;
        assert_eq!(after_frame % 16, 0);
        // The r12 slot carries the argument.
        let r12 = unsafe { *(sp as *const u64).add(R12_SLOT) };
        assert_eq!(r12, 0xdead);
    }
}
