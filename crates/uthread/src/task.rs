//! Green-thread task objects and the block/wake state machine.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::stack::Stack;

/// Task states. The `BLOCKING` → `BLOCKED` handshake closes the race
/// between a task announcing it will sleep and the scheduler actually
/// switching it out: a waker that arrives in the window flips the state to
/// `RUNNABLE`, and the scheduler, failing its `BLOCKING → BLOCKED` CAS,
/// re-queues the task instead of parking it.
pub mod state {
    /// In a runqueue.
    pub const RUNNABLE: u8 = 0;
    /// Executing on a worker.
    pub const RUNNING: u8 = 1;
    /// Announced intent to block; not yet switched out.
    pub const BLOCKING: u8 = 2;
    /// Switched out, waiting for a wake.
    pub const BLOCKED: u8 = 3;
    /// Finished.
    pub const DONE: u8 = 4;
}

/// One green thread.
pub struct UTask {
    /// Saved stack pointer while switched out.
    pub(crate) saved_sp: UnsafeCell<*mut u8>,
    /// The execution stack (returned to the pool on exit).
    pub(crate) stack: UnsafeCell<Option<Stack>>,
    /// Entry closure, taken exactly once by the trampoline.
    pub(crate) entry: UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
    /// State machine (see [`state`]).
    pub(crate) state: AtomicU8,
    /// Tasks waiting in `join` on this one.
    pub(crate) joiners: parking_lot::Mutex<Vec<Arc<UTask>>>,
}

// SAFETY: the UnsafeCell fields are only touched under the scheduler's
// ownership discipline — a task is manipulated either by the single worker
// currently running it or, while switched out, by the single worker that
// dequeued it; the state machine's atomics provide the happens-before
// edges. The lock-free runqueues preserve this: a Chase-Lev deque or
// injector shard hands each task to exactly one dequeuer (steals settle
// ownership with a CAS on `top` / the slot sequence number).
unsafe impl Send for UTask {}
unsafe impl Sync for UTask {}

impl UTask {
    /// Creates a task around an entry closure; the stack is attached by the
    /// runtime when the task is first scheduled.
    pub fn new(entry: Box<dyn FnOnce() + Send>) -> Arc<UTask> {
        Arc::new(UTask {
            saved_sp: UnsafeCell::new(std::ptr::null_mut()),
            stack: UnsafeCell::new(None),
            entry: UnsafeCell::new(Some(entry)),
            state: AtomicU8::new(state::RUNNABLE),
            joiners: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Whether the task has finished.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.state() == state::DONE
    }

    /// Wake-side half of the handshake. Returns `true` if the caller must
    /// enqueue the task (it was fully `BLOCKED`); `false` if the wake was
    /// absorbed (the task was still `BLOCKING` and its scheduler will
    /// requeue it) or spurious.
    pub fn try_wake(&self) -> bool {
        loop {
            match self.state.load(Ordering::Acquire) {
                state::BLOCKED => {
                    if self
                        .state
                        .compare_exchange(
                            state::BLOCKED,
                            state::RUNNABLE,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return true;
                    }
                }
                state::BLOCKING => {
                    if self
                        .state
                        .compare_exchange(
                            state::BLOCKING,
                            state::RUNNABLE,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        // The dequeuing scheduler requeues it.
                        return false;
                    }
                }
                // RUNNABLE / RUNNING / DONE: spurious wake.
                _ => return false,
            }
        }
    }

    /// Scheduler-side half: after switching a `BLOCKING` task out, decide
    /// whether it parked (`true`) or a concurrent wake already made it
    /// runnable again (`false` = requeue it).
    pub fn try_park(&self) -> bool {
        self.state
            .compare_exchange(
                state::BLOCKING,
                state::BLOCKED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Arc<UTask> {
        UTask::new(Box::new(|| {}))
    }

    #[test]
    fn wake_blocked_enqueues() {
        let t = task();
        t.state.store(state::BLOCKED, Ordering::Release);
        assert!(t.try_wake());
        assert_eq!(t.state(), state::RUNNABLE);
    }

    #[test]
    fn wake_blocking_is_absorbed() {
        let t = task();
        t.state.store(state::BLOCKING, Ordering::Release);
        assert!(!t.try_wake());
        assert_eq!(t.state(), state::RUNNABLE);
        // Scheduler then fails to park and requeues.
        assert!(!t.try_park());
    }

    #[test]
    fn park_succeeds_without_race() {
        let t = task();
        t.state.store(state::BLOCKING, Ordering::Release);
        assert!(t.try_park());
        assert_eq!(t.state(), state::BLOCKED);
    }

    #[test]
    fn spurious_wakes_ignored() {
        let t = task();
        assert!(!t.try_wake()); // RUNNABLE
        t.state.store(state::RUNNING, Ordering::Release);
        assert!(!t.try_wake());
        t.state.store(state::DONE, Ordering::Release);
        assert!(!t.try_wake());
    }
}
