//! The M:N scheduler: OS worker threads running green threads over
//! work-stealing deques.
//!
//! Ownership discipline: a task is owned by exactly one place at a time —
//! a runqueue (local deque or injector), the worker currently running it
//! (`WorkerCtx::current`), or a wait list (mutex/condvar/join). The
//! [`crate::task::UTask`] state machine provides the transitions between
//! those owners; every `unsafe` block below leans on that discipline.

use std::cell::{Cell, RefCell};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Injector, Stealer, Worker as Deque};

use crate::context::{seed_stack, skyloft_ctx_switch};
use crate::park::IdleWorkers;
use crate::stack::{Stack, StackPool};
use crate::task::{state, UTask};

/// Stacks cached per worker before spilling to the shared pool: spawn
/// and exit recycle stacks thread-locally in steady state, so the hot
/// path never touches the pool's lock.
const WORKER_STACK_CACHE: usize = 16;

/// The shared runtime state.
pub struct Runtime {
    injector: Injector<Arc<UTask>>,
    stealers: Vec<Stealer<Arc<UTask>>>,
    pool: StackPool,
    live: AtomicUsize,
    shutdown: AtomicBool,
    idle: IdleWorkers,
}

/// Per-OS-thread worker context; lives on the worker's stack for the whole
/// run and is reached through a thread-local pointer.
struct WorkerCtx {
    rt: Arc<Runtime>,
    /// This worker's index (its bit in the idle mask).
    index: usize,
    local: Deque<Arc<UTask>>,
    /// Saved scheduler stack pointer while a task runs.
    sched_sp: std::cell::UnsafeCell<*mut u8>,
    current: RefCell<Option<Arc<UTask>>>,
    /// Worker-private free stacks (overflow goes to `rt.pool`).
    stack_cache: RefCell<Vec<Stack>>,
}

impl WorkerCtx {
    /// Grabs an execution stack: worker cache first, shared pool second.
    fn take_stack(&self) -> Stack {
        self.stack_cache
            .borrow_mut()
            .pop()
            .unwrap_or_else(|| self.rt.pool.take())
    }

    /// Recycles an execution stack: worker cache first, shared pool on
    /// cache overflow.
    fn put_stack(&self, s: Stack) {
        let mut cache = self.stack_cache.borrow_mut();
        if cache.len() < WORKER_STACK_CACHE {
            cache.push(s);
        } else {
            drop(cache);
            self.rt.pool.put(s);
        }
    }
}

thread_local! {
    static WORKER: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

fn with_worker<R>(f: impl FnOnce(&WorkerCtx) -> R) -> R {
    WORKER.with(|w| {
        let p = w.get();
        assert!(
            !p.is_null(),
            "this operation must run inside Runtime::run (on a uthread)"
        );
        // SAFETY: the pointer targets the WorkerCtx on this OS thread's
        // stack, alive for the whole worker loop; it is cleared before the
        // loop returns.
        unsafe { f(&*p) }
    })
}

impl Runtime {
    /// Runs `main` as the first green thread on `n_workers` OS threads;
    /// returns when every green thread has finished.
    pub fn run(n_workers: usize, main: impl FnOnce() + Send + 'static) {
        assert!(n_workers > 0, "need at least one worker");
        WORKER.with(|w| assert!(w.get().is_null(), "nested Runtime::run"));
        let deques: Vec<Deque<Arc<UTask>>> = (0..n_workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let rt = Arc::new(Runtime {
            injector: Injector::new(),
            stealers,
            pool: StackPool::new(),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: IdleWorkers::new(n_workers),
        });
        rt.live.fetch_add(1, Ordering::AcqRel);
        rt.injector.push(UTask::new(Box::new(main)));
        let handles: Vec<_> = deques
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || worker_loop(rt, index, local))
            })
            .collect();
        // Join every worker before surfacing any failure: bailing on the
        // first dead worker would abandon the rest mid-shutdown (detached
        // threads still touching the runtime while the caller unwinds).
        let mut failures = Vec::new();
        for (index, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                failures.push(format!("worker {index}: {msg}"));
            }
        }
        assert!(
            failures.is_empty(),
            "{} worker thread(s) panicked: {}",
            failures.len(),
            failures.join("; ")
        );
    }

    fn schedule(&self, ctx: Option<&WorkerCtx>, t: Arc<UTask>) {
        match ctx {
            Some(c) => c.local.push(t),
            None => self.injector.push(t),
        }
        // The push above is visible before the fence inside notify_one;
        // see park.rs for the lost-wakeup argument.
        self.idle.notify_one();
    }
}

fn worker_loop(rt: Arc<Runtime>, index: usize, local: Deque<Arc<UTask>>) {
    let ctx = WorkerCtx {
        rt: Arc::clone(&rt),
        index,
        local,
        sched_sp: std::cell::UnsafeCell::new(std::ptr::null_mut()),
        current: RefCell::new(None),
        stack_cache: RefCell::new(Vec::new()),
    };
    WORKER.with(|w| w.set(&ctx as *const WorkerCtx));
    loop {
        if let Some(t) = find_task(&ctx) {
            run_one(&ctx, t);
            continue;
        }
        if rt.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Announce idleness, then re-scan every queue before actually
        // parking: together with the notifier's push-then-notify order
        // this closes the sleep/notify race without any shared lock
        // (protocol and fences in park.rs).
        rt.idle.prepare(ctx.index);
        if rt.shutdown.load(Ordering::Acquire) {
            rt.idle.cancel(ctx.index);
            break;
        }
        match find_task(&ctx) {
            Some(t) => {
                rt.idle.cancel(ctx.index);
                run_one(&ctx, t);
            }
            None => rt.idle.park(ctx.index),
        }
    }
    // Hand cached stacks back so later runtimes can reuse the memory
    // through the shared pool's bounded free list.
    for s in ctx.stack_cache.borrow_mut().drain(..) {
        rt.pool.put(s);
    }
    WORKER.with(|w| w.set(std::ptr::null()));
}

fn find_task(ctx: &WorkerCtx) -> Option<Arc<UTask>> {
    if let Some(t) = ctx.local.pop() {
        return Some(t);
    }
    // Drain the injector, then steal from siblings.
    loop {
        let s = ctx.rt.injector.steal_batch_and_pop(&ctx.local);
        if let crossbeam::deque::Steal::Success(t) = s {
            return Some(t);
        }
        if !s.is_retry() {
            break;
        }
    }
    for st in &ctx.rt.stealers {
        loop {
            match st.steal() {
                crossbeam::deque::Steal::Success(t) => return Some(t),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
    }
    None
}

/// Runs one task until it switches back (yield, block, or exit).
fn run_one(ctx: &WorkerCtx, task: Arc<UTask>) {
    task.state.store(state::RUNNING, Ordering::Release);
    // SAFETY: the task is exclusively owned here (it came off a runqueue),
    // so touching its stack/saved_sp cells is unaliased.
    unsafe {
        if (*task.stack.get()).is_none() {
            let stack = ctx.take_stack();
            let sp = seed_stack(stack.top(), Arc::as_ptr(&task) as *mut u8);
            *task.saved_sp.get() = sp;
            *task.stack.get() = Some(stack);
        }
    }
    let sp = unsafe { *task.saved_sp.get() };
    ctx.current.replace(Some(task));
    // SAFETY: `sp` is either a freshly seeded frame or the frame saved by
    // this task's last switch-out; `sched_sp` is this worker's own slot.
    unsafe { skyloft_ctx_switch(ctx.sched_sp.get(), sp) };
    // The task switched back: decide where it goes next.
    let task = ctx.current.replace(None).expect("current task vanished");
    match task.state() {
        state::RUNNABLE => ctx.rt.schedule(Some(ctx), task),
        state::BLOCKING => {
            if !task.try_park() {
                // A wake raced in; the task is runnable again.
                ctx.rt.schedule(Some(ctx), task);
            }
        }
        state::DONE => {
            // SAFETY: the task is finished and switched out; nothing will
            // touch its stack again.
            let stack = unsafe { (*task.stack.get()).take() };
            if let Some(s) = stack {
                ctx.put_stack(s);
            }
            if ctx.rt.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                ctx.rt.shutdown.store(true, Ordering::Release);
                ctx.rt.idle.notify_all();
            }
        }
        other => unreachable!("task switched out in state {other}"),
    }
}

/// Rust-side first frame of every green thread; reached from the assembly
/// trampoline with the task pointer planted at seed time.
///
/// # Safety
///
/// Called only by the trampoline with the pointer passed to `seed_stack`,
/// which is the `Arc<UTask>` kept alive by the running worker's `current`
/// slot.
#[unsafe(no_mangle)]
unsafe extern "C" fn skyloft_thread_entry(task_ptr: *mut u8) {
    // SAFETY: see function docs.
    let task: &UTask = unsafe { &*(task_ptr as *const UTask) };
    // SAFETY: the entry closure is taken exactly once, here.
    let entry = unsafe { (*task.entry.get()).take().expect("entry already taken") };
    // Do not unwind across the assembly frame below.
    let _ = std::panic::catch_unwind(AssertUnwindSafe(entry));
    task.state.store(state::DONE, Ordering::Release);
    let joiners = std::mem::take(&mut *task.joiners.lock());
    with_worker(|ctx| {
        for j in joiners {
            if j.try_wake() {
                ctx.rt.schedule(Some(ctx), j);
            }
        }
    });
    switch_to_sched();
    unreachable!("finished task resumed");
}

/// Switches from the current task back to the worker's scheduler context.
pub(crate) fn switch_to_sched() {
    let (save, restore) = with_worker(|ctx| {
        let cur = ctx.current.borrow();
        let task = cur.as_ref().expect("switch_to_sched outside a task");
        // SAFETY: reading this worker's own sched_sp slot; the task's
        // saved_sp cell is owned by the running task (us).
        (task.saved_sp.get(), unsafe { *ctx.sched_sp.get() })
    });
    // SAFETY: `restore` is the scheduler frame this worker saved when it
    // switched into us; `save` is our own slot.
    unsafe { skyloft_ctx_switch(save, restore) };
    // NOTE: we may resume on a *different* worker; take no references
    // across this point.
}

/// The currently running green thread.
pub(crate) fn current_task() -> Arc<UTask> {
    with_worker(|ctx| {
        ctx.current
            .borrow()
            .as_ref()
            .expect("not inside a uthread")
            .clone()
    })
}

/// Wakes a task (no-op if it is not blocked), scheduling it locally.
pub(crate) fn wake_task(t: Arc<UTask>) {
    if t.try_wake() {
        with_worker(|ctx| ctx.rt.schedule(Some(ctx), t));
    }
}

/// Handle to a spawned green thread.
pub struct JoinHandle {
    task: Arc<UTask>,
}

impl JoinHandle {
    /// Blocks the calling green thread until the target finishes.
    pub fn join(self) {
        if self.task.is_done() {
            return;
        }
        let me = current_task();
        {
            let mut joiners = self.task.joiners.lock();
            if self.task.is_done() {
                return;
            }
            me.state.store(state::BLOCKING, Ordering::Release);
            joiners.push(Arc::clone(&me));
        }
        while !self.task.is_done() {
            switch_to_sched();
        }
    }

    /// Whether the target has finished.
    pub fn is_finished(&self) -> bool {
        self.task.is_done()
    }
}

/// Spawns a green thread onto the current runtime (Table 7's `Spawn`
/// operation: a pooled stack and a deque push, no kernel involvement).
///
/// # Panics
///
/// Panics when called outside [`Runtime::run`].
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let task = UTask::new(Box::new(f));
    with_worker(|ctx| {
        ctx.rt.live.fetch_add(1, Ordering::AcqRel);
        ctx.rt.schedule(Some(ctx), Arc::clone(&task));
    });
    JoinHandle { task }
}

/// Cooperatively yields the processor (Table 7's `Yield`).
pub fn yield_now() {
    let me = current_task();
    me.state.store(state::RUNNABLE, Ordering::Release);
    switch_to_sched();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn main_runs_to_completion() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        Runtime::run(1, move || f2.store(true, Ordering::Release));
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn spawn_and_join_many() {
        let sum = Arc::new(AtomicU64::new(0));
        let s = sum.clone();
        Runtime::run(4, move || {
            let handles: Vec<_> = (0..100)
                .map(|i| {
                    let s = s.clone();
                    spawn(move || {
                        s.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn yield_interleaves_two_tasks() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l = log.clone();
        // One worker: interleaving can only come from yields.
        Runtime::run(1, move || {
            let l1 = l.clone();
            let a = spawn(move || {
                for i in 0..5 {
                    l1.lock().push(('a', i));
                    yield_now();
                }
            });
            let l2 = l.clone();
            let b = spawn(move || {
                for i in 0..5 {
                    l2.lock().push(('b', i));
                    yield_now();
                }
            });
            a.join();
            b.join();
        });
        let log = log.lock();
        assert_eq!(log.len(), 10);
        // Both tasks made progress before either finished.
        let first_b = log.iter().position(|&(c, _)| c == 'b').unwrap();
        let last_a = log.iter().rposition(|&(c, _)| c == 'a').unwrap();
        assert!(first_b < last_a, "tasks did not interleave: {log:?}");
    }

    #[test]
    fn nested_spawns() {
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        Runtime::run(2, move || {
            let c2 = c.clone();
            spawn(move || {
                let c3 = c2.clone();
                spawn(move || {
                    c3.fetch_add(1, Ordering::Relaxed);
                })
                .join();
                c2.fetch_add(1, Ordering::Relaxed);
            })
            .join();
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_task_does_not_kill_runtime() {
        let ok = Arc::new(AtomicBool::new(false));
        let o = ok.clone();
        Runtime::run(2, move || {
            let h = spawn(|| panic!("intentional test panic"));
            h.join();
            o.store(true, Ordering::Release);
        });
        assert!(ok.load(Ordering::Acquire));
    }

    #[test]
    fn stacks_are_recycled_across_tasks() {
        Runtime::run(1, || {
            for _ in 0..50 {
                spawn(|| {}).join();
            }
        });
    }

    /// Satellite regression test for the idle-path wakeup protocol (the
    /// race formerly closed by re-checking under the global idle lock):
    /// park a worker, wake it with exactly one schedule/notify, and
    /// require the wakeup to land in a small fraction of the park
    /// backstop — a lost notification would only surface at the
    /// backstop timeout and fail the latency bound.
    #[test]
    fn parked_worker_wakes_on_single_notify() {
        use std::time::{Duration, Instant};
        let latency_us = Arc::new(AtomicU64::new(u64::MAX));
        let l2 = latency_us.clone();
        Runtime::run(2, move || {
            // Give the second worker time to scan, find nothing, and
            // park via the eventcount.
            std::thread::sleep(Duration::from_millis(20));
            let t0 = Instant::now();
            let l3 = l2.clone();
            let h = spawn(move || {
                l3.store(t0.elapsed().as_micros() as u64, Ordering::Release);
            });
            // Busy-hold this worker (no yield): the task can only run if
            // the single notify actually woke the parked sibling, which
            // then steals it from our local deque.
            while !h.is_finished() {
                std::hint::spin_loop();
            }
            h.join();
        });
        let us = latency_us.load(Ordering::Acquire);
        assert!(
            us < 25_000,
            "wake latency {us}us — the single notify was lost and the park backstop fired"
        );
    }
}
