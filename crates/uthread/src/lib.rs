//! A real user-level threading runtime (§5.4, Table 7).
//!
//! Everything else in this workspace runs on virtual time; this crate is
//! host-executable: an M:N green-thread runtime with an assembly context
//! switch, pooled stacks, and user-space `Mutex`/`Condvar`, in the style of
//! the Skyloft LibOS threading layer. The `tab7_threadops` bench target
//! measures its `yield`/`spawn`/`mutex`/`condvar` costs against
//! `std::thread` (pthread), reproducing Table 7's comparison.
//!
//! Preemption note: real μs-scale preemption needs UINTR (or signals),
//! neither available here — this runtime is cooperative, and the
//! preemption *evaluation* runs on the simulated substrate instead (see
//! DESIGN.md §2). What is real here is the context-switch machinery whose
//! cost Table 7 reports.
//!
//! # Examples
//!
//! ```
//! use skyloft_uthread::Runtime;
//!
//! let sum = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
//! let s2 = sum.clone();
//! Runtime::run(2, move || {
//!     let handles: Vec<_> = (0..8)
//!         .map(|i| {
//!             let s = s2.clone();
//!             skyloft_uthread::spawn(move || {
//!                 s.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//! });
//! assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 28);
//! ```

#![warn(missing_docs)]

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "skyloft-uthread implements its context switch for x86_64 only; \
     port context.rs (callee-saved register save/restore) for this target"
);

mod context;
mod park;
mod sync;
mod task;

pub mod stack;

pub mod runtime;

pub use runtime::{spawn, yield_now, JoinHandle, Runtime};
pub use sync::{Condvar, Mutex, MutexGuard};
