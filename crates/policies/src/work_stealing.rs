//! Work-stealing policy (§5.3; Table 4 lists the preemptive variant at
//! 150 LoC).
//!
//! Shenango-style load balancing: each core owns a FIFO runqueue and an
//! idle core steals from the longest queue. The paper's point in §5.3 is
//! that enabling Skyloft's timer-interrupt handler turns this policy
//! preemptive *without modifying the scheduler* — a RocksDB SCAN that
//! exceeds the quantum is preempted and re-queued locally, so queued GETs
//! behind it (or thieves) get the core (Figure 8b).
//!
//! Runqueues live in a dense array indexed through [`CoreMap`] (sparse
//! core lists don't allocate dead queues) and `queue_len` reads a cached
//! counter instead of summing per-core lengths. Decisions are
//! bit-identical to [`crate::reference::WorkStealing`].

use std::collections::VecDeque;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft_sim::Nanos;

use crate::coremap::CoreMap;

/// Work-stealing policy state.
pub struct WorkStealing {
    queues: Vec<VecDeque<TaskId>>,
    map: CoreMap,
    cores: Vec<CoreId>,
    /// Cached Σ of per-queue lengths (O(1) `queue_len`).
    queued_total: usize,
    /// Preemption quantum; `None` = cooperative (Shenango's model).
    quantum: Option<Nanos>,
    /// Successful steals (observability).
    pub steals: u64,
}

impl WorkStealing {
    /// Creates the policy. `quantum = None` disables preemption.
    pub fn new(quantum: Option<Nanos>) -> Self {
        WorkStealing {
            queues: Vec::new(),
            map: CoreMap::default(),
            cores: Vec::new(),
            queued_total: 0,
            quantum,
            steals: 0,
        }
    }

    /// Total queued tasks.
    pub fn total_queued(&self) -> usize {
        self.queued_total
    }
}

impl Policy for WorkStealing {
    fn name(&self) -> &'static str {
        if self.quantum.is_some() {
            "skyloft-ws-preempt"
        } else {
            "skyloft-ws"
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.map = CoreMap::new(&env.worker_cores);
        self.queues = vec![VecDeque::new(); self.map.len()];
        self.cores = env.worker_cores.clone();
        self.queued_total = 0;
    }

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let rqi = self.map.rq(cpu.unwrap_or(self.cores[0]));
        self.queues[rqi].push_back(t);
        self.queued_total += 1;
    }

    fn task_dequeue(&mut self, _tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let t = self.queues[self.map.rq(cpu)].pop_front();
        if t.is_some() {
            self.queued_total -= 1;
        }
        t
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt over-quantum tasks when local work is waiting; remote
        // waiters are served by stealing instead of bouncing the current
        // task.
        self.quantum
            .is_some_and(|q| ran >= q && !self.queues[self.map.rq(cpu)].is_empty())
    }

    fn sched_balance(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        // Steal from the longest queue (Shenango steals on idle).
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.queues[self.map.rq(c)].len())?;
        let stolen = self.queues[self.map.rq(victim)].pop_back();
        if stolen.is_some() {
            self.steals += 1;
            self.queued_total -= 1;
        }
        stolen
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): sojourn of the oldest waiting
        // task across *all* runqueues, by `runnable_since`.
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn setup(n: usize, quantum: Option<Nanos>) -> (WorkStealing, TaskTable) {
        let mut p = WorkStealing::new(quantum);
        p.sched_init(&SchedEnv {
            worker_cores: (0..n).collect(),
            dispatcher: None,
        });
        (p, TaskTable::new())
    }

    fn mk(tasks: &mut TaskTable) -> TaskId {
        tasks.insert(|id| Task::bare(id, 0))
    }

    #[test]
    fn local_fifo_then_steal() {
        let (mut p, mut tasks) = setup(2, None);
        let a = mk(&mut tasks);
        let b = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::New, Nanos::ZERO);
        // Core 1 is empty: dequeue fails, steal succeeds (takes the tail).
        assert_eq!(p.task_dequeue(&mut tasks, 1, Nanos::ZERO), None);
        assert_eq!(p.sched_balance(&mut tasks, 1, Nanos::ZERO), Some(b));
        assert_eq!(p.steals, 1);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
    }

    #[test]
    fn cooperative_variant_never_preempts() {
        let (mut p, mut tasks) = setup(1, None);
        let cur = mk(&mut tasks);
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::New, Nanos::ZERO);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_ms(5), Nanos::ZERO));
        assert_eq!(p.name(), "skyloft-ws");
    }

    #[test]
    fn preemptive_variant_needs_local_waiters() {
        let (mut p, mut tasks) = setup(2, Some(Nanos::from_us(5)));
        let cur = mk(&mut tasks);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(10), Nanos::ZERO));
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, Some(1), EnqueueFlags::New, Nanos::ZERO);
        // Waiter on another core: stealing, not preemption, serves it.
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(10), Nanos::ZERO));
        let w2 = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w2, Some(0), EnqueueFlags::New, Nanos::ZERO);
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(10), Nanos::ZERO));
        assert_eq!(p.name(), "skyloft-ws-preempt");
    }

    #[test]
    fn steal_prefers_longest_queue() {
        let (mut p, mut tasks) = setup(3, None);
        for _ in 0..3 {
            let t = mk(&mut tasks);
            p.task_enqueue(&mut tasks, t, Some(1), EnqueueFlags::New, Nanos::ZERO);
        }
        let t0 = mk(&mut tasks);
        p.task_enqueue(&mut tasks, t0, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.sched_balance(&mut tasks, 2, Nanos::ZERO).unwrap();
        assert_eq!(p.queues[1].len(), 2, "stole from the longest queue");
        assert_eq!(p.queues[0].len(), 1);
    }

    #[test]
    fn sparse_core_list_uses_dense_queues() {
        let mut p = WorkStealing::new(None);
        p.sched_init(&SchedEnv {
            worker_cores: vec![7, 31],
            dispatcher: None,
        });
        assert_eq!(p.queues.len(), 2, "no dead queues for core-id holes");
        let mut tasks = TaskTable::new();
        let a = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, Some(31), EnqueueFlags::New, Nanos::ZERO);
        assert_eq!(p.queue_len(), Some(1));
        // The mapped sibling core steals across the id gap.
        assert_eq!(p.sched_balance(&mut tasks, 7, Nanos::ZERO), Some(a));
        assert_eq!(p.queue_len(), Some(0));
    }
}
