//! The Shinjuku centralized preemptive policy (§5.2; 192 LoC in Table 4).
//!
//! A spinning dispatcher owns a single global FCFS queue. Idle workers
//! receive the queue head; a worker that exceeds the preemption quantum is
//! interrupted (user IPI in Skyloft, posted interrupt in the original
//! Shinjuku) and its request returns to the queue tail. This approximates
//! processor sharing and eliminates head-of-line blocking for dispersive
//! workloads (Figure 7a).

use std::collections::VecDeque;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft_sim::Nanos;

/// Shinjuku policy state: the dispatcher's global queue.
pub struct Shinjuku {
    queue: VecDeque<TaskId>,
    quantum: Option<Nanos>,
    /// Requests preempted at least once (observability).
    pub preempted_requests: u64,
}

impl Shinjuku {
    /// Creates the policy; `quantum = None` gives non-preemptive FCFS
    /// (the "centralized FCFS" baseline shape).
    pub fn new(quantum: Option<Nanos>) -> Self {
        Shinjuku {
            queue: VecDeque::new(),
            quantum,
            preempted_requests: 0,
        }
    }
}

impl Policy for Shinjuku {
    fn name(&self) -> &'static str {
        "skyloft-shinjuku"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Centralized
    }

    fn sched_init(&mut self, _env: &SchedEnv) {}

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        _cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        if flags == EnqueueFlags::Preempted {
            self.preempted_requests += 1;
        }
        // FCFS: both fresh and preempted requests join the tail.
        self.queue.push_back(t);
    }

    fn task_dequeue(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn sched_poll(
        &mut self,
        _tasks: &mut TaskTable,
        idle_workers: &[CoreId],
        _now: Nanos,
        out: &mut Vec<(CoreId, TaskId)>,
    ) {
        for &core in idle_workers {
            match self.queue.pop_front() {
                Some(t) => out.push((core, t)),
                None => break,
            }
        }
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt a worker over quantum only when requests are waiting:
        // bouncing a lone request through the queue buys nothing.
        self.quantum
            .is_some_and(|q| ran >= q && !self.queue.is_empty())
    }

    fn quantum(&self) -> Option<Nanos> {
        self.quantum
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): sojourn of the oldest waiting
        // task by `runnable_since`, read from the task table rather than a
        // shadow timestamp so every policy reports on the same clock.
        self.queue
            .iter()
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn mk(tasks: &mut TaskTable) -> TaskId {
        tasks.insert(|id| Task::bare(id, 0))
    }

    #[test]
    fn preempted_requests_rejoin_tail() {
        let mut p = Shinjuku::new(Some(Nanos::from_us(30)));
        let mut tasks = TaskTable::new();
        let a = mk(&mut tasks);
        let b = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos(0));
        p.task_enqueue(&mut tasks, b, None, EnqueueFlags::Preempted, Nanos(1));
        assert_eq!(p.preempted_requests, 1);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos(2)), Some(a));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos(2)), Some(b));
    }

    #[test]
    fn quantum_gates_preemption() {
        let mut p = Shinjuku::new(Some(Nanos::from_us(30)));
        let mut tasks = TaskTable::new();
        let cur = mk(&mut tasks);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(100), Nanos::ZERO));
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, None, EnqueueFlags::New, Nanos::ZERO);
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(100), Nanos::ZERO));
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(10), Nanos::ZERO));
        assert_eq!(p.quantum(), Some(Nanos::from_us(30)));
    }

    #[test]
    fn non_preemptive_variant() {
        let mut p = Shinjuku::new(None);
        let mut tasks = TaskTable::new();
        let cur = mk(&mut tasks);
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, None, EnqueueFlags::New, Nanos::ZERO);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_ms(10), Nanos::ZERO));
        assert_eq!(p.quantum(), None);
    }

    #[test]
    fn poll_fills_idle_workers_fcfs() {
        let mut p = Shinjuku::new(Some(Nanos::from_us(30)));
        let mut tasks = TaskTable::new();
        let a = mk(&mut tasks);
        let b = mk(&mut tasks);
        tasks.get_mut(a).runnable_since = Nanos(10);
        tasks.get_mut(b).runnable_since = Nanos(20);
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos(10));
        p.task_enqueue(&mut tasks, b, None, EnqueueFlags::New, Nanos(20));
        assert_eq!(p.queue_delay(&tasks, Nanos(110)), Some(Nanos(100)));
        let mut placed = Vec::new();
        p.sched_poll(&mut tasks, &[5, 6, 7], Nanos(110), &mut placed);
        assert_eq!(placed, vec![(5, a), (6, b)]);
        assert_eq!(p.queue_delay(&tasks, Nanos(110)), None);
    }
}
