//! Compact core→runqueue index for per-CPU policies.
//!
//! Per-CPU policies keep one runqueue per worker core. The naive layout —
//! `Vec` indexed directly by `CoreId`, sized `max_core_id + 1` — allocates
//! dead queues for every hole in a sparse core list (a 2-socket layout
//! pinned to cores {0, 47} would carry 46 unused runqueues). [`CoreMap`]
//! keeps a dense runqueue array sized by the number of *actual* worker
//! cores and translates `CoreId` → dense slot through a small lookup
//! table, so policies pay for the cores they use, not the largest id.

use skyloft::ops::CoreId;

/// Sentinel in the sparse table for core ids that own no runqueue.
const NO_RQ: u32 = u32::MAX;

/// Maps sparse `CoreId`s onto dense runqueue indices `0..len()`.
#[derive(Debug, Default)]
pub struct CoreMap {
    /// Sparse table: `idx[core] == NO_RQ` if `core` owns no runqueue.
    idx: Vec<u32>,
    /// Number of mapped cores (== number of runqueues to allocate).
    len: usize,
}

impl CoreMap {
    /// Builds the map from a policy's worker-core list. Dense indices are
    /// assigned in list order, so `cores[i]` owns runqueue `i`.
    pub fn new(cores: &[CoreId]) -> Self {
        let max = cores.iter().copied().max().unwrap_or(0);
        let mut idx = vec![NO_RQ; max + 1];
        for (slot, &c) in cores.iter().enumerate() {
            idx[c] = slot as u32;
        }
        // With no worker cores at all, fall back to a single runqueue owned
        // by core 0 — the same shape `cpu.unwrap_or(cores[0])` call sites
        // assumed before (enqueue with no placement went to queue 0).
        if cores.is_empty() {
            idx[0] = 0;
            return CoreMap { idx, len: 1 };
        }
        CoreMap {
            idx,
            len: cores.len(),
        }
    }

    /// Dense runqueue index for `core`. Panics (debug) / returns queue 0
    /// (release) for an unmapped core — unmapped cores never reach policy
    /// callbacks in a correctly configured machine.
    #[inline]
    pub fn rq(&self, core: CoreId) -> usize {
        let slot = self.idx.get(core).copied().unwrap_or(NO_RQ);
        debug_assert!(slot != NO_RQ, "core {core} has no runqueue");
        if slot == NO_RQ {
            0
        } else {
            slot as usize
        }
    }

    /// Number of runqueues the policy should allocate.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no cores are mapped (only before `sched_init`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layout_for_sparse_cores() {
        let m = CoreMap::new(&[3, 47]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.rq(3), 0);
        assert_eq!(m.rq(47), 1);
    }

    #[test]
    fn contiguous_cores_map_identity() {
        let m = CoreMap::new(&[0, 1, 2, 3]);
        assert_eq!(m.len(), 4);
        for c in 0..4 {
            assert_eq!(m.rq(c), c);
        }
    }

    #[test]
    fn empty_core_list_falls_back_to_queue_zero() {
        let m = CoreMap::new(&[]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.rq(0), 0);
    }
}
