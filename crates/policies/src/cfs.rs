//! Completely Fair Scheduler (Skyloft CFS, §5.1; 430 LoC in Table 4).
//!
//! A faithful reduction of `kernel/sched/fair.c`'s core algorithm:
//! per-CPU runqueues ordered by virtual runtime, weight-scaled vruntime
//! accounting, a dynamic slice of `max(sched_latency / nr_running,
//! min_granularity)`, sleeper compensation on wakeup (the reason CFS beats
//! RR on schbench wakeup latency, §5.1), and wakeup preemption gated by a
//! wakeup granularity.
//!
//! Runqueues live in a dense array indexed through [`CoreMap`] (sparse
//! core lists don't allocate dead queues) and the total queued count is
//! a cached counter, so `queue_len` — called on every core-allocation
//! probe — is O(1) instead of O(#cores). Decisions are bit-identical to
//! [`crate::reference::Cfs`].

use std::collections::BTreeSet;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_sim::Nanos;

use crate::coremap::CoreMap;

/// Weight of a nice-0 task, as in Linux.
pub const NICE0_WEIGHT: u64 = 1024;

struct CfsRq {
    /// Tasks ordered by (vruntime, id).
    tree: BTreeSet<(u64, TaskId)>,
    /// Monotonic floor for new/woken tasks' vruntime.
    min_vruntime: u64,
}

impl CfsRq {
    fn new() -> Self {
        CfsRq {
            tree: BTreeSet::new(),
            min_vruntime: 0,
        }
    }

    fn leftmost(&self) -> Option<(u64, TaskId)> {
        self.tree.first().copied()
    }
}

/// CFS policy state.
pub struct Cfs {
    rqs: Vec<CfsRq>,
    map: CoreMap,
    cores: Vec<CoreId>,
    /// Cached Σ of per-rq lengths (O(1) `queue_len`).
    queued_total: usize,
    params: SchedParams,
}

impl Cfs {
    /// Creates the policy with Table 5 parameters.
    pub fn new(params: SchedParams) -> Self {
        Cfs {
            rqs: Vec::new(),
            map: CoreMap::default(),
            cores: Vec::new(),
            queued_total: 0,
            params,
        }
    }

    /// Weight-scaled vruntime delta for `delta` wall time.
    fn calc_delta(delta: Nanos, weight: u32) -> u64 {
        delta.0 * NICE0_WEIGHT / weight.max(1) as u64
    }

    /// The dynamic slice: latency target shared among runnable tasks,
    /// floored at the minimum granularity.
    fn slice(&self, nr_running: usize) -> Nanos {
        let shared = Nanos(self.params.sched_latency.0 / nr_running.max(1) as u64);
        shared.max(self.params.min_granularity)
    }

    fn queued(&self, cpu: CoreId) -> usize {
        self.rqs[self.map.rq(cpu)].tree.len()
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.queued_total
    }
}

impl Policy for Cfs {
    fn name(&self) -> &'static str {
        "skyloft-cfs"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.map = CoreMap::new(&env.worker_cores);
        self.rqs = (0..self.map.len()).map(|_| CfsRq::new()).collect();
        self.cores = env.worker_cores.clone();
        self.queued_total = 0;
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, _now: Nanos) {
        let task = tasks.get_mut(t);
        task.pd.vruntime = 0;
        task.pd.slice_used = Nanos::ZERO;
        if task.pd.weight == 0 {
            task.pd.weight = NICE0_WEIGHT as u32;
        }
    }

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let rqi = self.map.rq(cpu.unwrap_or(self.cores[0]));
        let rq_min = self.rqs[rqi].min_vruntime;
        let task = tasks.get_mut(t);
        match flags {
            EnqueueFlags::New => {
                // New tasks start at the queue's minimum: no credit, no debt.
                task.pd.vruntime = task.pd.vruntime.max(rq_min);
            }
            EnqueueFlags::Wakeup => {
                // Sleeper compensation (place_entity): a woken task gets at
                // most half a latency period of credit, so it runs soon but
                // cannot starve the queue.
                let credit = self.params.sched_latency.0 / 2;
                task.pd.vruntime = task.pd.vruntime.max(rq_min.saturating_sub(credit));
            }
            EnqueueFlags::Preempted | EnqueueFlags::Yield => {
                // Keep accumulated vruntime: fairness across preemptions.
            }
        }
        let key = (task.pd.vruntime, t);
        self.rqs[rqi].tree.insert(key);
        self.queued_total += 1;
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let rqi = self.map.rq(cpu);
        let (vr, t) = self.rqs[rqi].leftmost()?;
        let rq = &mut self.rqs[rqi];
        rq.tree.remove(&(vr, t));
        rq.min_vruntime = rq.min_vruntime.max(vr);
        self.queued_total -= 1;
        let task = tasks.get_mut(t);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn enqueue_batch(
        &mut self,
        tasks: &mut TaskTable,
        batch: &[(TaskId, Option<CoreId>, EnqueueFlags)],
        now: Nanos,
    ) {
        // Single-runqueue fast path: one core→rq translation, one
        // `min_vruntime` load, and one counter update for the whole burst.
        // CFS enqueues never move the floor, so the serial loop's per-task
        // reads all see the same value — the fusion is trivially
        // decision-identical. Mixed-hint bursts fall back to singles.
        let Some(&(_, hint0, _)) = batch.first() else {
            return;
        };
        let rqi = self.map.rq(hint0.unwrap_or(self.cores[0]));
        if batch
            .iter()
            .any(|&(_, h, _)| self.map.rq(h.unwrap_or(self.cores[0])) != rqi)
        {
            for &(t, hint, flags) in batch {
                self.task_enqueue(tasks, t, hint, flags, now);
            }
            return;
        }
        let credit = self.params.sched_latency.0 / 2;
        let rq = &mut self.rqs[rqi];
        let rq_min = rq.min_vruntime;
        for &(t, _, flags) in batch {
            let task = tasks.get_mut(t);
            match flags {
                EnqueueFlags::New => {
                    task.pd.vruntime = task.pd.vruntime.max(rq_min);
                }
                EnqueueFlags::Wakeup => {
                    task.pd.vruntime = task.pd.vruntime.max(rq_min.saturating_sub(credit));
                }
                EnqueueFlags::Preempted | EnqueueFlags::Yield => {}
            }
            rq.tree.insert((task.pd.vruntime, t));
        }
        self.queued_total += batch.len();
    }

    fn pick_batch(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        max: usize,
        _now: Nanos,
        out: &mut Vec<TaskId>,
    ) {
        // Leftmost picks in a straight run; the monotone floor is the max
        // of the popped vruntimes, folded in once (`max` is associative),
        // and the cached total is decremented once.
        let rq = &mut self.rqs[self.map.rq(cpu)];
        let mut floor = rq.min_vruntime;
        let mut picked = 0;
        while picked < max {
            let Some((vr, t)) = rq.tree.pop_first() else {
                break;
            };
            floor = floor.max(vr);
            tasks.get_mut(t).pd.slice_used = Nanos::ZERO;
            out.push(t);
            picked += 1;
        }
        rq.min_vruntime = floor;
        self.queued_total -= picked;
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Account the running task's vruntime since the last tick.
        let (cur_vr, slice_total) = {
            let task = tasks.get_mut(current);
            let delta = ran.saturating_sub(task.pd.slice_used);
            task.pd.slice_used = ran;
            task.pd.vruntime += Self::calc_delta(delta, task.pd.weight);
            (task.pd.vruntime, ran)
        };
        let Some((left_vr, _)) = self.rqs[self.map.rq(cpu)].leftmost() else {
            return false;
        };
        // check_preempt_tick: preempt once the slice is used up, or if the
        // leftmost waiter is far behind in vruntime.
        let slice = self.slice(self.queued(cpu) + 1);
        if slice_total >= slice && left_vr < cur_vr {
            return true;
        }
        cur_vr > left_vr + self.params.sched_latency.0
    }

    fn check_wakeup_preempt(
        &mut self,
        tasks: &TaskTable,
        woken: TaskId,
        _cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // check_preempt_wakeup: preempt if the woken task's vruntime is
        // ahead (smaller) by more than the wakeup granularity.
        let wakeup_gran = self.params.wakeup_gran.0;
        let wv = tasks.get(woken).pd.vruntime;
        let cv = tasks.get(current).pd.vruntime;
        wv + wakeup_gran < cv
    }

    fn sched_balance(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.rqs[self.map.rq(c)].tree.len())?;
        // Steal the *last* (largest-vruntime) entity: it would have run
        // latest on its own queue, so migrating it costs the least locality.
        let vi = self.map.rq(victim);
        let (vr, t) = self.rqs[vi].tree.last().copied()?;
        self.rqs[vi].tree.remove(&(vr, t));
        self.queued_total -= 1;
        // Re-normalize to the thief's queue.
        let rq_min = self.rqs[self.map.rq(cpu)].min_vruntime;
        let task = tasks.get_mut(t);
        task.pd.vruntime = task.pd.vruntime.max(rq_min);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): sojourn of the oldest waiting
        // task across all runqueues, by `runnable_since`. The trees order
        // by vruntime, so the oldest arrival requires a scan.
        self.rqs
            .iter()
            .flat_map(|rq| rq.tree.iter().map(|&(_, t)| t))
            .map(|t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn setup(n: usize) -> (Cfs, TaskTable) {
        let mut p = Cfs::new(SchedParams::SKYLOFT_CFS);
        p.sched_init(&SchedEnv {
            worker_cores: (0..n).collect(),
            dispatcher: None,
        });
        (p, TaskTable::new())
    }

    fn mk(p: &mut Cfs, tasks: &mut TaskTable) -> TaskId {
        let t = tasks.insert(|id| Task::bare(id, 0));
        p.task_init(tasks, t, Nanos::ZERO);
        t
    }

    #[test]
    fn picks_min_vruntime() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 5_000;
        tasks.get_mut(b).pd.vruntime = 1_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(b));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
    }

    #[test]
    fn min_vruntime_monotone() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 10_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_dequeue(&mut tasks, 0, Nanos::ZERO);
        assert_eq!(p.rqs[0].min_vruntime, 10_000);
        // A later dequeue of a smaller vruntime cannot lower the floor.
        let b = mk(&mut p, &mut tasks);
        tasks.get_mut(b).pd.vruntime = 3_000;
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_dequeue(&mut tasks, 0, Nanos::ZERO);
        assert_eq!(p.rqs[0].min_vruntime, 10_000);
    }

    #[test]
    fn sleeper_gets_bounded_credit() {
        let (mut p, mut tasks) = setup(1);
        p.rqs[0].min_vruntime = 1_000_000;
        let a = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Wakeup, Nanos::ZERO);
        let vr = tasks.get(a).pd.vruntime;
        // Credit = half the 50 us latency target.
        assert_eq!(vr, 1_000_000 - 25_000);
    }

    #[test]
    fn tick_accounts_weighted_vruntime() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        let other = mk(&mut p, &mut tasks);
        tasks.get_mut(other).pd.vruntime = u64::MAX / 2; // far behind queue head? no: far ahead
        p.task_enqueue(
            &mut tasks,
            other,
            Some(0),
            EnqueueFlags::Preempted,
            Nanos::ZERO,
        );
        // Nice-0 task: vruntime advances 1:1 with wall time.
        p.sched_timer_tick(&mut tasks, 0, cur, Nanos(10_000), Nanos(10_000));
        assert_eq!(tasks.get(cur).pd.vruntime, 10_000);
        // Heavier task (weight 2048) advances at half rate.
        let heavy = mk(&mut p, &mut tasks);
        tasks.get_mut(heavy).pd.weight = 2048;
        p.sched_timer_tick(&mut tasks, 0, heavy, Nanos(10_000), Nanos(10_000));
        assert_eq!(tasks.get(heavy).pd.vruntime, 5_000);
    }

    #[test]
    fn slice_expiry_preempts_when_behind() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        let waiter = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, waiter, Some(0), EnqueueFlags::New, Nanos::ZERO);
        // Two runnable: slice = max(50us/2, 12.5us) = 25 us.
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos(10_000), Nanos(10_000)));
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos(26_000), Nanos(26_000)));
    }

    #[test]
    fn wakeup_preemption_respects_granularity() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        let woken = mk(&mut p, &mut tasks);
        tasks.get_mut(cur).pd.vruntime = 100_000;
        tasks.get_mut(woken).pd.vruntime = 80_000;
        // 20 us behind < the 25 us wakeup granularity: no preemption.
        assert!(!p.check_wakeup_preempt(&tasks, woken, 0, cur, Nanos::ZERO, Nanos::ZERO));
        tasks.get_mut(woken).pd.vruntime = 50_000;
        assert!(p.check_wakeup_preempt(&tasks, woken, 0, cur, Nanos::ZERO, Nanos::ZERO));
    }

    #[test]
    fn balance_renormalizes_vruntime() {
        let (mut p, mut tasks) = setup(2);
        let a = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 50;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.rqs[1].min_vruntime = 9_999;
        let stolen = p.sched_balance(&mut tasks, 1, Nanos::ZERO).unwrap();
        assert_eq!(stolen, a);
        assert_eq!(tasks.get(a).pd.vruntime, 9_999);
    }

    #[test]
    fn sparse_core_list_uses_dense_runqueues() {
        let mut p = Cfs::new(SchedParams::SKYLOFT_CFS);
        p.sched_init(&SchedEnv {
            worker_cores: vec![5, 40],
            dispatcher: None,
        });
        assert_eq!(p.rqs.len(), 2, "no dead queues for core-id holes");
        let mut tasks = TaskTable::new();
        let a = tasks.insert(|id| Task::bare(id, 0));
        p.task_init(&mut tasks, a, Nanos::ZERO);
        p.task_enqueue(&mut tasks, a, Some(40), EnqueueFlags::New, Nanos::ZERO);
        assert_eq!(p.queue_len(), Some(1));
        assert_eq!(p.task_dequeue(&mut tasks, 40, Nanos::ZERO), Some(a));
        assert_eq!(p.queue_len(), Some(0));
    }
}
