//! Reference policy implementations: the pre-optimization linear-scan
//! versions, frozen as a differential oracle.
//!
//! The optimized policies in [`crate::eevdf`], [`crate::cfs`],
//! [`crate::rr`], [`crate::shinjuku`], [`crate::shinjuku_shenango`] and
//! [`crate::work_stealing`] must make **bit-identical scheduling
//! decisions** to the implementations here — same pick, same tie-break
//! (`(vd, TaskId)` order in EEVDF), same steal victim, same preemption
//! verdicts — only cheaper. That obligation is enforced two ways, the same
//! pattern the simulator's `reference-queue` and the uthread runtime's
//! `reference-deque` features use:
//!
//! * the differential proptests in `tests/differential.rs` drive an
//!   optimized policy and its reference twin through identical random
//!   operation traces and assert pick-for-pick equality;
//! * building with `--features reference-policy` swaps the crate's
//!   re-exports (`skyloft_policies::Eevdf` etc.) to these versions, so the
//!   whole test suite, the figure sweeps and the golden CSVs can be
//!   reproduced against the oracle end to end.
//!
//! The code is intentionally a frozen copy (not a re-share of helpers with
//! the optimized versions): sharing would let a bug travel into both sides
//! and cancel out in the differential.

use std::collections::VecDeque;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_sim::Nanos;

use crate::cfs::NICE0_WEIGHT;

// ---------------------------------------------------------------------
// EEVDF (full-scan weighted average, O(n) pick, O(n) retain dequeue)
// ---------------------------------------------------------------------

struct EevdfRq {
    /// Queued (waiting) tasks in arrival order; every pick scans it.
    queue: Vec<TaskId>,
    /// Monotonic floor tracking the queue's virtual time.
    min_vruntime: u64,
}

/// Reference EEVDF: recomputes the weighted average `V` with a full queue
/// scan on every pick and dequeues with an O(n) `retain`.
pub struct Eevdf {
    rqs: Vec<EevdfRq>,
    cores: Vec<CoreId>,
    params: SchedParams,
}

impl Eevdf {
    /// Creates the policy; `params.min_granularity` is the base slice.
    pub fn new(params: SchedParams) -> Self {
        Eevdf {
            rqs: Vec::new(),
            cores: Vec::new(),
            params,
        }
    }

    /// Weighted average virtual time `V` of the queued tasks, by direct
    /// summation (`Σ vᵢ·wᵢ / Σ wᵢ`, truncating u128 division).
    pub fn avg_vruntime(&self, tasks: &TaskTable, cpu: CoreId) -> Option<u64> {
        let rq = &self.rqs[cpu];
        if rq.queue.is_empty() {
            return None;
        }
        let mut num: u128 = 0;
        let mut den: u128 = 0;
        for &t in &rq.queue {
            let pd = &tasks.get(t).pd;
            num += pd.vruntime as u128 * pd.weight as u128;
            den += pd.weight as u128;
        }
        Some((num / den.max(1)) as u64)
    }

    /// Virtual deadline of a task: `ve + base_slice * 1024/weight`.
    fn deadline(&self, vruntime: u64, weight: u32) -> u64 {
        vruntime + self.params.min_granularity.0 * NICE0_WEIGHT / weight.max(1) as u64
    }

    /// EEVDF pick: earliest virtual deadline among eligible tasks.
    fn pick(&self, tasks: &TaskTable, cpu: CoreId) -> Option<TaskId> {
        let v = self.avg_vruntime(tasks, cpu)?;
        let rq = &self.rqs[cpu];
        let mut best: Option<(u64, TaskId)> = None;
        for &t in &rq.queue {
            let pd = &tasks.get(t).pd;
            // Eligibility: lag = V - ve >= 0.
            if pd.vruntime > v {
                continue;
            }
            let vd = pd.deadline;
            if best.is_none_or(|(bd, bt)| vd < bd || (vd == bd && t < bt)) {
                best = Some((vd, t));
            }
        }
        // The weighted average guarantees at least one eligible task.
        debug_assert!(best.is_some(), "no eligible task despite non-empty queue");
        best.map(|(_, t)| t)
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.rqs.iter().map(|r| r.queue.len()).sum()
    }
}

impl Policy for Eevdf {
    fn name(&self) -> &'static str {
        "skyloft-eevdf"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        let max = env.worker_cores.iter().copied().max().unwrap_or(0);
        self.rqs = (0..=max)
            .map(|_| EevdfRq {
                queue: Vec::new(),
                min_vruntime: 0,
            })
            .collect();
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, _now: Nanos) {
        let task = tasks.get_mut(t);
        task.pd.vruntime = 0;
        task.pd.lag = 0;
        task.pd.slice_used = Nanos::ZERO;
        if task.pd.weight == 0 {
            task.pd.weight = NICE0_WEIGHT as u32;
        }
    }

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        let v = self
            .avg_vruntime(tasks, cpu)
            .unwrap_or(self.rqs[cpu].min_vruntime);
        {
            let task = tasks.get_mut(t);
            match flags {
                EnqueueFlags::New => {
                    // New tasks join with zero lag.
                    task.pd.vruntime = v;
                }
                EnqueueFlags::Wakeup => {
                    // place_entity: re-enter at V minus the preserved lag,
                    // so sleeping neither gains nor loses service.
                    let lag = task.pd.lag.clamp(
                        -(self.params.min_granularity.0 as i64),
                        self.params.min_granularity.0 as i64,
                    );
                    task.pd.vruntime = (v as i128 - lag as i128).max(0) as u64;
                }
                EnqueueFlags::Preempted | EnqueueFlags::Yield => {
                    // Keep vruntime: the deadline carries over.
                }
            }
            task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        }
        self.rqs[cpu].queue.push(t);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let t = self.pick(tasks, cpu)?;
        let rq = &mut self.rqs[cpu];
        rq.queue.retain(|&x| x != t);
        let task = tasks.get_mut(t);
        rq.min_vruntime = rq.min_vruntime.max(task.pd.vruntime);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn task_block(&mut self, tasks: &mut TaskTable, t: TaskId, cpu: CoreId, _now: Nanos) {
        // Preserve the task's lag across the sleep.
        let v = self
            .avg_vruntime(tasks, cpu)
            .unwrap_or(self.rqs[cpu].min_vruntime);
        let task = tasks.get_mut(t);
        task.pd.lag = v as i64 - task.pd.vruntime as i64;
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        let slice_done = {
            let task = tasks.get_mut(current);
            let delta = ran.saturating_sub(task.pd.slice_used);
            task.pd.slice_used = ran;
            task.pd.vruntime += delta.0 * NICE0_WEIGHT / task.pd.weight.max(1) as u64;
            ran >= self.params.min_granularity
        };
        // Once the current request (base slice) is fulfilled, the task
        // would issue a new request with a later deadline; if any waiter is
        // queued, the eligible-earliest-deadline pick goes to the queue.
        slice_done && !self.rqs[cpu].queue.is_empty()
    }

    fn check_wakeup_preempt(
        &mut self,
        tasks: &TaskTable,
        woken: TaskId,
        cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt if the woken task is eligible with an earlier deadline.
        let Some(v) = self.avg_vruntime(tasks, cpu) else {
            return false;
        };
        let w = &tasks.get(woken).pd;
        w.vruntime <= v && w.deadline < tasks.get(current).pd.deadline
    }

    fn sched_balance(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.rqs[c].queue.len())?;
        let t = self.rqs[victim].queue.pop()?;
        let rq_min = self.rqs[cpu].min_vruntime;
        let task = tasks.get_mut(t);
        task.pd.vruntime = task.pd.vruntime.max(rq_min);
        task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn
        // across all runqueues.
        self.rqs
            .iter()
            .flat_map(|rq| rq.queue.iter().copied())
            .map(|t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

// ---------------------------------------------------------------------
// CFS (dense max_core_id+1 runqueue vector, O(#cores) queue_len)
// ---------------------------------------------------------------------

struct CfsRq {
    /// Tasks ordered by (vruntime, id).
    tree: std::collections::BTreeSet<(u64, TaskId)>,
    /// Monotonic floor for new/woken tasks' vruntime.
    min_vruntime: u64,
}

impl CfsRq {
    fn new() -> Self {
        CfsRq {
            tree: std::collections::BTreeSet::new(),
            min_vruntime: 0,
        }
    }

    fn leftmost(&self) -> Option<(u64, TaskId)> {
        self.tree.first().copied()
    }
}

/// Reference CFS: identical algorithm to [`crate::cfs::Cfs`] with the
/// original dense `max_core_id + 1` runqueue layout and summed
/// `queue_len`.
pub struct Cfs {
    rqs: Vec<CfsRq>,
    cores: Vec<CoreId>,
    params: SchedParams,
}

impl Cfs {
    /// Creates the policy with Table 5 parameters.
    pub fn new(params: SchedParams) -> Self {
        Cfs {
            rqs: Vec::new(),
            cores: Vec::new(),
            params,
        }
    }

    /// Weight-scaled vruntime delta for `delta` wall time.
    fn calc_delta(delta: Nanos, weight: u32) -> u64 {
        delta.0 * NICE0_WEIGHT / weight.max(1) as u64
    }

    /// The dynamic slice: latency target shared among runnable tasks,
    /// floored at the minimum granularity.
    fn slice(&self, nr_running: usize) -> Nanos {
        let shared = Nanos(self.params.sched_latency.0 / nr_running.max(1) as u64);
        shared.max(self.params.min_granularity)
    }

    fn queued(&self, cpu: CoreId) -> usize {
        self.rqs[cpu].tree.len()
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.rqs.iter().map(|r| r.tree.len()).sum()
    }
}

impl Policy for Cfs {
    fn name(&self) -> &'static str {
        "skyloft-cfs"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        let max = env.worker_cores.iter().copied().max().unwrap_or(0);
        self.rqs = (0..=max).map(|_| CfsRq::new()).collect();
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, _now: Nanos) {
        let task = tasks.get_mut(t);
        task.pd.vruntime = 0;
        task.pd.slice_used = Nanos::ZERO;
        if task.pd.weight == 0 {
            task.pd.weight = NICE0_WEIGHT as u32;
        }
    }

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        let rq_min = self.rqs[cpu].min_vruntime;
        let task = tasks.get_mut(t);
        match flags {
            EnqueueFlags::New => {
                // New tasks start at the queue's minimum: no credit, no debt.
                task.pd.vruntime = task.pd.vruntime.max(rq_min);
            }
            EnqueueFlags::Wakeup => {
                // Sleeper compensation (place_entity): a woken task gets at
                // most half a latency period of credit, so it runs soon but
                // cannot starve the queue.
                let credit = self.params.sched_latency.0 / 2;
                task.pd.vruntime = task.pd.vruntime.max(rq_min.saturating_sub(credit));
            }
            EnqueueFlags::Preempted | EnqueueFlags::Yield => {
                // Keep accumulated vruntime: fairness across preemptions.
            }
        }
        let key = (task.pd.vruntime, t);
        self.rqs[cpu].tree.insert(key);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let (vr, t) = self.rqs[cpu].leftmost()?;
        self.rqs[cpu].tree.remove(&(vr, t));
        let rq = &mut self.rqs[cpu];
        rq.min_vruntime = rq.min_vruntime.max(vr);
        let task = tasks.get_mut(t);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Account the running task's vruntime since the last tick.
        let (cur_vr, slice_total) = {
            let task = tasks.get_mut(current);
            let delta = ran.saturating_sub(task.pd.slice_used);
            task.pd.slice_used = ran;
            task.pd.vruntime += Self::calc_delta(delta, task.pd.weight);
            (task.pd.vruntime, ran)
        };
        let Some((left_vr, _)) = self.rqs[cpu].leftmost() else {
            return false;
        };
        // check_preempt_tick: preempt once the slice is used up, or if the
        // leftmost waiter is far behind in vruntime.
        let slice = self.slice(self.queued(cpu) + 1);
        if slice_total >= slice && left_vr < cur_vr {
            return true;
        }
        cur_vr > left_vr + self.params.sched_latency.0
    }

    fn check_wakeup_preempt(
        &mut self,
        tasks: &TaskTable,
        woken: TaskId,
        _cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // check_preempt_wakeup: preempt if the woken task's vruntime is
        // ahead (smaller) by more than the wakeup granularity.
        let wakeup_gran = self.params.wakeup_gran.0;
        let wv = tasks.get(woken).pd.vruntime;
        let cv = tasks.get(current).pd.vruntime;
        wv + wakeup_gran < cv
    }

    fn sched_balance(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.rqs[c].tree.len())?;
        // Steal the *last* (largest-vruntime) entity: it would have run
        // latest on its own queue, so migrating it costs the least locality.
        let (vr, t) = self.rqs[victim].tree.last().copied()?;
        self.rqs[victim].tree.remove(&(vr, t));
        // Re-normalize to the thief's queue.
        let rq_min = self.rqs[cpu].min_vruntime;
        let task = tasks.get_mut(t);
        task.pd.vruntime = task.pd.vruntime.max(rq_min);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn
        // across all runqueues.
        self.rqs
            .iter()
            .flat_map(|rq| rq.tree.iter().map(|&(_, t)| t))
            .map(|t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

// ---------------------------------------------------------------------
// Round-robin (dense queue vector)
// ---------------------------------------------------------------------

/// Reference round-robin: identical algorithm to [`crate::rr::RoundRobin`]
/// with the original dense queue layout.
pub struct RoundRobin {
    queues: Vec<VecDeque<TaskId>>,
    cores: Vec<CoreId>,
    slice: Option<Nanos>,
}

impl RoundRobin {
    /// Creates the policy with the given time slice (`None` = FIFO).
    pub fn new(slice: Option<Nanos>) -> Self {
        RoundRobin {
            queues: Vec::new(),
            cores: Vec::new(),
            slice,
        }
    }

    fn rq(&mut self, cpu: CoreId) -> &mut VecDeque<TaskId> {
        &mut self.queues[cpu]
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        if self.slice.is_some() {
            "skyloft-rr"
        } else {
            "skyloft-fifo"
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        let max = env.worker_cores.iter().copied().max().unwrap_or(0);
        self.queues = vec![VecDeque::new(); max + 1];
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        self.rq(cpu).push_back(t);
    }

    fn task_dequeue(&mut self, _tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        self.rq(cpu).pop_front()
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        match self.slice {
            Some(s) => ran >= s && !self.queues[cpu].is_empty(),
            None => false,
        }
    }

    fn sched_balance(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        // Pull from the longest queue (simple periodic balancing, as the
        // kernel's RT pull logic would).
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.queues[c].len())?;
        // Queues hold only *waiting* tasks (the running task is not queued),
        // so stealing even a lone waiter keeps the machine work-conserving.
        self.queues[victim].pop_back()
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn
        // across all runqueues.
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

// ---------------------------------------------------------------------
// Work stealing (dense queue vector)
// ---------------------------------------------------------------------

/// Reference work stealing: identical algorithm to
/// [`crate::work_stealing::WorkStealing`] with the original dense queue
/// layout.
pub struct WorkStealing {
    queues: Vec<VecDeque<TaskId>>,
    cores: Vec<CoreId>,
    /// Preemption quantum; `None` = cooperative (Shenango's model).
    quantum: Option<Nanos>,
    /// Successful steals (observability).
    pub steals: u64,
}

impl WorkStealing {
    /// Creates the policy. `quantum = None` disables preemption.
    pub fn new(quantum: Option<Nanos>) -> Self {
        WorkStealing {
            queues: Vec::new(),
            cores: Vec::new(),
            quantum,
            steals: 0,
        }
    }

    /// Total queued tasks.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl Policy for WorkStealing {
    fn name(&self) -> &'static str {
        if self.quantum.is_some() {
            "skyloft-ws-preempt"
        } else {
            "skyloft-ws"
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        let max = env.worker_cores.iter().copied().max().unwrap_or(0);
        self.queues = vec![VecDeque::new(); max + 1];
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        self.queues[cpu].push_back(t);
    }

    fn task_dequeue(&mut self, _tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        self.queues[cpu].pop_front()
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt over-quantum tasks when local work is waiting; remote
        // waiters are served by stealing instead of bouncing the current
        // task.
        self.quantum
            .is_some_and(|q| ran >= q && !self.queues[cpu].is_empty())
    }

    fn sched_balance(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        // Steal from the longest queue (Shenango steals on idle).
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.queues[c].len())?;
        let stolen = self.queues[victim].pop_back();
        if stolen.is_some() {
            self.steals += 1;
        }
        stolen
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn
        // across all runqueues.
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

// ---------------------------------------------------------------------
// Shinjuku (centralized FCFS)
// ---------------------------------------------------------------------

/// Reference Shinjuku: the centralized preemptive-FCFS policy, identical
/// to [`crate::shinjuku::Shinjuku`].
pub struct Shinjuku {
    queue: VecDeque<TaskId>,
    quantum: Option<Nanos>,
    /// Requests preempted at least once (observability).
    pub preempted_requests: u64,
}

impl Shinjuku {
    /// Creates the policy; `quantum = None` gives non-preemptive FCFS
    /// (the "centralized FCFS" baseline shape).
    pub fn new(quantum: Option<Nanos>) -> Self {
        Shinjuku {
            queue: VecDeque::new(),
            quantum,
            preempted_requests: 0,
        }
    }
}

impl Policy for Shinjuku {
    fn name(&self) -> &'static str {
        "skyloft-shinjuku"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Centralized
    }

    fn sched_init(&mut self, _env: &SchedEnv) {}

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        _cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        if flags == EnqueueFlags::Preempted {
            self.preempted_requests += 1;
        }
        // FCFS: both fresh and preempted requests join the tail.
        self.queue.push_back(t);
    }

    fn task_dequeue(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn sched_poll(
        &mut self,
        _tasks: &mut TaskTable,
        idle_workers: &[CoreId],
        _now: Nanos,
        out: &mut Vec<(CoreId, TaskId)>,
    ) {
        for &core in idle_workers {
            match self.queue.pop_front() {
                Some(t) => out.push((core, t)),
                None => break,
            }
        }
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt a worker over quantum only when requests are waiting:
        // bouncing a lone request through the queue buys nothing.
        self.quantum
            .is_some_and(|q| ran >= q && !self.queue.is_empty())
    }

    fn quantum(&self) -> Option<Nanos> {
        self.quantum
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): oldest `runnable_since` sojourn.
        self.queue
            .iter()
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.queue.len())
    }
}

// ---------------------------------------------------------------------
// Shinjuku + Shenango core allocation
// ---------------------------------------------------------------------

/// Reference Shinjuku+Shenango: wraps the reference [`Shinjuku`] with the
/// same EWMA congestion signal as
/// [`crate::shinjuku_shenango::ShinjukuShenango`].
pub struct ShinjukuShenango {
    inner: Shinjuku,
    /// EWMA of the head-of-line queueing delay, in nanoseconds.
    ewma_delay_ns: f64,
    /// EWMA smoothing factor per observation.
    alpha: f64,
}

impl ShinjukuShenango {
    /// Creates the policy with the given preemption quantum.
    pub fn new(quantum: Option<Nanos>) -> Self {
        ShinjukuShenango {
            inner: Shinjuku::new(quantum),
            ewma_delay_ns: 0.0,
            alpha: 0.25,
        }
    }

    /// The smoothed congestion signal.
    pub fn smoothed_delay(&self) -> Nanos {
        Nanos(self.ewma_delay_ns as u64)
    }

    /// Feeds one queue-delay observation into the EWMA (called by the
    /// allocator harness each decision interval).
    pub fn observe_delay(&mut self, tasks: &TaskTable, now: Nanos) {
        let inst = self.inner.queue_delay(tasks, now).unwrap_or(Nanos::ZERO).0 as f64;
        self.ewma_delay_ns = self.alpha * inst + (1.0 - self.alpha) * self.ewma_delay_ns;
    }
}

impl Policy for ShinjukuShenango {
    fn name(&self) -> &'static str {
        "skyloft-shinjuku-shenango"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Centralized
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.inner.sched_init(env);
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos) {
        self.inner.task_init(tasks, t, now);
    }

    fn task_terminate(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos) {
        self.inner.task_terminate(tasks, t, now);
    }

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        now: Nanos,
    ) {
        self.inner.task_enqueue(tasks, t, cpu, flags, now);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, now: Nanos) -> Option<TaskId> {
        self.inner.task_dequeue(tasks, cpu, now)
    }

    fn sched_poll(
        &mut self,
        tasks: &mut TaskTable,
        idle_workers: &[CoreId],
        now: Nanos,
        out: &mut Vec<(CoreId, TaskId)>,
    ) {
        self.inner.sched_poll(tasks, idle_workers, now, out);
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        now: Nanos,
    ) -> bool {
        self.inner.sched_timer_tick(tasks, cpu, current, ran, now)
    }

    fn quantum(&self) -> Option<Nanos> {
        self.inner.quantum()
    }

    /// The allocator's congestion probe: reports the max of the
    /// instantaneous and smoothed delays so a spike is never hidden by
    /// the average.
    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        let smoothed = self.smoothed_delay();
        match self.inner.queue_delay(tasks, now) {
            Some(inst) => Some(inst.max(smoothed)),
            None => (smoothed > Nanos::ZERO).then_some(smoothed),
        }
    }

    fn queue_len(&self) -> Option<usize> {
        self.inner.queue_len()
    }
}
