//! Per-CPU round-robin with time slicing (Skyloft RR, §5.1; 141 LoC in
//! Table 4). With `slice = None` the policy degenerates to per-CPU FIFO
//! (the "Skyloft-FIFO, infinite time slice" series of Figure 6).
//!
//! Runqueues live in a dense array indexed through [`CoreMap`] (sparse
//! core lists don't allocate dead queues) and `queue_len` reads a cached
//! counter instead of summing per-core lengths. Decisions are
//! bit-identical to [`crate::reference::RoundRobin`].

use std::collections::VecDeque;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft_sim::Nanos;

use crate::coremap::CoreMap;

/// Round-robin policy state: one FIFO runqueue per core.
pub struct RoundRobin {
    queues: Vec<VecDeque<TaskId>>,
    map: CoreMap,
    cores: Vec<CoreId>,
    /// Cached Σ of per-queue lengths (O(1) `queue_len`).
    queued_total: usize,
    slice: Option<Nanos>,
}

impl RoundRobin {
    /// Creates the policy with the given time slice (`None` = FIFO).
    pub fn new(slice: Option<Nanos>) -> Self {
        RoundRobin {
            queues: Vec::new(),
            map: CoreMap::default(),
            cores: Vec::new(),
            queued_total: 0,
            slice,
        }
    }

    fn rq(&mut self, cpu: CoreId) -> &mut VecDeque<TaskId> {
        let rqi = self.map.rq(cpu);
        &mut self.queues[rqi]
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.queued_total
    }
}

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        if self.slice.is_some() {
            "skyloft-rr"
        } else {
            "skyloft-fifo"
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.map = CoreMap::new(&env.worker_cores);
        self.queues = vec![VecDeque::new(); self.map.len()];
        self.cores = env.worker_cores.clone();
        self.queued_total = 0;
    }

    fn task_init(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        _tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        _flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        self.rq(cpu).push_back(t);
        self.queued_total += 1;
    }

    fn task_dequeue(&mut self, _tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let t = self.rq(cpu).pop_front();
        if t.is_some() {
            self.queued_total -= 1;
        }
        t
    }

    fn sched_timer_tick(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        match self.slice {
            Some(s) => ran >= s && !self.queues[self.map.rq(cpu)].is_empty(),
            None => false,
        }
    }

    fn sched_balance(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CoreId,
        _now: Nanos,
    ) -> Option<TaskId> {
        // Pull from the longest queue (simple periodic balancing, as the
        // kernel's RT pull logic would).
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.queues[self.map.rq(c)].len())?;
        // Queues hold only *waiting* tasks (the running task is not queued),
        // so stealing even a lone waiter keeps the machine work-conserving.
        let t = self.rq(victim).pop_back();
        if t.is_some() {
            self.queued_total -= 1;
        }
        t
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): sojourn of the oldest waiting
        // task across *all* runqueues, by `runnable_since`.
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|&t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn env(n: usize) -> SchedEnv {
        SchedEnv {
            worker_cores: (0..n).collect(),
            dispatcher: None,
        }
    }

    fn mk(tasks: &mut TaskTable) -> TaskId {
        tasks.insert(|id| Task::bare(id, 0))
    }

    #[test]
    fn per_cpu_fifo_order() {
        let mut p = RoundRobin::new(Some(Nanos::from_us(50)));
        p.sched_init(&env(2));
        let mut tasks = TaskTable::new();
        let a = mk(&mut tasks);
        let b = mk(&mut tasks);
        let c = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, c, Some(1), EnqueueFlags::New, Nanos::ZERO);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
        assert_eq!(p.task_dequeue(&mut tasks, 1, Nanos::ZERO), Some(c));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(b));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), None);
    }

    #[test]
    fn slice_expiry_preempts_only_with_waiters() {
        let mut p = RoundRobin::new(Some(Nanos::from_us(50)));
        p.sched_init(&env(1));
        let mut tasks = TaskTable::new();
        let cur = mk(&mut tasks);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(60), Nanos::ZERO));
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::New, Nanos::ZERO);
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(60), Nanos::ZERO));
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_us(40), Nanos::ZERO));
    }

    #[test]
    fn fifo_never_preempts() {
        let mut p = RoundRobin::new(None);
        p.sched_init(&env(1));
        let mut tasks = TaskTable::new();
        let cur = mk(&mut tasks);
        let w = mk(&mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::New, Nanos::ZERO);
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos::from_ms(100), Nanos::ZERO));
        assert_eq!(p.name(), "skyloft-fifo");
    }

    #[test]
    fn balance_steals_from_longest_queue() {
        let mut p = RoundRobin::new(Some(Nanos::from_us(50)));
        p.sched_init(&env(3));
        let mut tasks = TaskTable::new();
        for _ in 0..3 {
            let t = mk(&mut tasks);
            p.task_enqueue(&mut tasks, t, Some(1), EnqueueFlags::New, Nanos::ZERO);
        }
        let stolen = p.sched_balance(&mut tasks, 2, Nanos::ZERO);
        assert!(stolen.is_some());
        assert_eq!(p.queues[1].len(), 2);
        // A lone waiter is still stolen: queues hold only waiting tasks.
        let t = mk(&mut tasks);
        let mut p2 = RoundRobin::new(None);
        p2.sched_init(&env(2));
        p2.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::New, Nanos::ZERO);
        assert_eq!(p2.sched_balance(&mut tasks, 1, Nanos::ZERO), Some(t));
        assert_eq!(p2.sched_balance(&mut tasks, 1, Nanos::ZERO), None);
    }

    #[test]
    fn sparse_core_list_uses_dense_queues() {
        let mut p = RoundRobin::new(None);
        p.sched_init(&SchedEnv {
            worker_cores: vec![2, 63],
            dispatcher: None,
        });
        assert_eq!(p.queues.len(), 2, "no dead queues for core-id holes");
        let mut tasks = TaskTable::new();
        let a = mk(&mut tasks);
        p.task_enqueue(&mut tasks, a, Some(63), EnqueueFlags::New, Nanos::ZERO);
        assert_eq!(p.queue_len(), Some(1));
        assert_eq!(p.task_dequeue(&mut tasks, 63, Nanos::ZERO), Some(a));
        assert_eq!(p.queue_len(), Some(0));
    }
}
