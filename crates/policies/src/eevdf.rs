//! Earliest Eligible Virtual Deadline First (Skyloft EEVDF, §5.1; 579 LoC
//! in Table 4).
//!
//! EEVDF (Stoica & Abdel-Wahab, 1995; Linux v6.6's CFS replacement)
//! replaces CFS's heuristics with a principled rule: among *eligible*
//! tasks — those whose vruntime is at or before the queue's weighted
//! average virtual time `V` (equivalently, whose lag is non-negative) —
//! pick the one with the earliest *virtual deadline* `vd = ve +
//! slice/weight`. A task that sleeps keeps its lag, so a woken
//! latency-sensitive task with positive lag gets a near-immediate, but
//! bounded, claim to the CPU — the mechanism behind EEVDF's lower wakeup
//! latencies in Figure 5.
//!
//! # Hot-path structure
//!
//! This implementation follows Linux's incremental scheme rather than
//! recomputing aggregates per pick:
//!
//! * `V` comes from two accumulators maintained at enqueue/dequeue —
//!   `avg_load = Σ wᵢ` and `avg_vruntime = Σ (vᵢ − min_vruntime)·wᵢ`,
//!   the latter *rebased* on `min_vruntime` so the products stay small
//!   and a signed `i128` cannot overflow even at `u64`-limit vruntimes.
//!   `V = min_vruntime + ⌊avg_vruntime / avg_load⌋`, identical to the
//!   direct `⌊Σ vᵢwᵢ / Σ wᵢ⌋` because `min_vruntime·avg_load` is a
//!   multiple of the divisor. Eligibility needs no division at all:
//!   `v ≤ V ⟺ (v − min_vruntime)·avg_load ≤ avg_vruntime`.
//! * Picks walk a `BTreeSet<(deadline, TaskId)>` in ascending order and
//!   take the first eligible entry — by construction the minimum
//!   `(vd, id)` pair among eligible tasks, the reference scan's exact
//!   result including the `TaskId` tie-break.
//! * Dequeue of a specific task is O(log n): the task's `pd.rq_slot`
//!   indexes a tombstoned insertion-order vector (preserving the
//!   "balance steals the newest arrival" semantics) and the deadline key
//!   removes it from the tree.
//!
//! Decisions are bit-identical to [`crate::reference::Eevdf`]; the
//! differential proptests in `tests/differential.rs` hold the two to
//! pick-for-pick equality.

use std::collections::BTreeSet;

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{PolicyData, TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_sim::Nanos;

use crate::cfs::NICE0_WEIGHT;
use crate::coremap::CoreMap;

struct EevdfRq {
    /// Queued tasks in arrival order, with tombstones for removed slots;
    /// `pd.rq_slot` is a task's index here. Kept so `sched_balance` can
    /// still steal the newest arrival in O(1).
    order: Vec<Option<TaskId>>,
    /// Number of live (non-tombstone) entries in `order`.
    live: usize,
    /// Queued tasks keyed by `(virtual deadline, id)`; ascending iteration
    /// visits candidates in the pick's tie-break order.
    by_deadline: BTreeSet<(u64, TaskId)>,
    /// Monotonic floor tracking the queue's virtual time; also the base
    /// the `avg_vruntime` accumulator is rebased on.
    min_vruntime: u64,
    /// Σ weight over queued tasks.
    avg_load: u64,
    /// Σ (vruntime − min_vruntime)·weight over queued tasks. Signed:
    /// wakeup placement `V − lag` can land below the floor.
    avg_vruntime: i128,
}

impl EevdfRq {
    fn new() -> Self {
        EevdfRq {
            order: Vec::new(),
            live: 0,
            by_deadline: BTreeSet::new(),
            min_vruntime: 0,
            avg_load: 0,
            avg_vruntime: 0,
        }
    }

    /// Weighted average virtual time `V`, from the accumulators.
    fn v(&self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        if self.avg_load == 0 {
            // Degenerate all-zero-weight queue: Σ vᵢwᵢ / max(Σwᵢ, 1) = 0.
            return Some(0);
        }
        let v = self.min_vruntime as i128 + self.avg_vruntime.div_euclid(self.avg_load as i128);
        Some(v as u64)
    }

    /// Division-free eligibility: `v ≤ V`.
    fn eligible(&self, vruntime: u64) -> bool {
        if self.avg_load == 0 {
            return Some(vruntime) <= self.v();
        }
        (vruntime as i128 - self.min_vruntime as i128) * self.avg_load as i128 <= self.avg_vruntime
    }

    /// Adds a task to every index and folds it into the accumulators.
    fn attach(&mut self, t: TaskId, pd: &mut PolicyData) {
        pd.rq_slot = self.order.len() as u32;
        self.order.push(Some(t));
        self.live += 1;
        self.by_deadline.insert((pd.deadline, t));
        self.avg_vruntime += (pd.vruntime as i128 - self.min_vruntime as i128) * pd.weight as i128;
        self.avg_load += pd.weight as u64;
    }

    /// Removes a task from every index and subtracts it from the
    /// accumulators. `pd` must be the exact values it was attached with.
    fn detach(&mut self, t: TaskId, pd: &PolicyData) {
        debug_assert_eq!(self.order[pd.rq_slot as usize], Some(t));
        self.order[pd.rq_slot as usize] = None;
        self.live -= 1;
        self.by_deadline.remove(&(pd.deadline, t));
        self.avg_vruntime -= (pd.vruntime as i128 - self.min_vruntime as i128) * pd.weight as i128;
        self.avg_load -= pd.weight as u64;
        while matches!(self.order.last(), Some(None)) {
            self.order.pop();
        }
    }

    /// Raises the floor to `candidate` (if higher) and rebases the
    /// accumulator: Σ(vᵢ − m₁)wᵢ = Σ(vᵢ − m₀)wᵢ − (m₁ − m₀)·Σwᵢ.
    fn update_min(&mut self, candidate: u64) {
        let new_min = self.min_vruntime.max(candidate);
        if new_min != self.min_vruntime {
            self.avg_vruntime -= (new_min - self.min_vruntime) as i128 * self.avg_load as i128;
            self.min_vruntime = new_min;
        }
    }

    /// The most recently enqueued live task (balance's steal victim).
    fn newest(&mut self) -> Option<TaskId> {
        while matches!(self.order.last(), Some(None)) {
            self.order.pop();
        }
        self.order.last().copied().flatten()
    }
}

/// EEVDF policy state.
pub struct Eevdf {
    rqs: Vec<EevdfRq>,
    map: CoreMap,
    cores: Vec<CoreId>,
    params: SchedParams,
}

impl Eevdf {
    /// Creates the policy; `params.min_granularity` is the base slice.
    pub fn new(params: SchedParams) -> Self {
        Eevdf {
            rqs: Vec::new(),
            map: CoreMap::default(),
            cores: Vec::new(),
            params,
        }
    }

    /// Weighted average virtual time `V` of the tasks queued on `cpu`,
    /// read from the incremental accumulators in O(1). The task table is
    /// unused (the direct-summation oracle needs it; the shared signature
    /// keeps the two interchangeable in differential tests).
    pub fn avg_vruntime(&self, _tasks: &TaskTable, cpu: CoreId) -> Option<u64> {
        self.rqs[self.map.rq(cpu)].v()
    }

    /// Virtual deadline of a task: `ve + base_slice * 1024/weight`.
    fn deadline(&self, vruntime: u64, weight: u32) -> u64 {
        vruntime + self.params.min_granularity.0 * NICE0_WEIGHT / weight.max(1) as u64
    }

    /// EEVDF pick: earliest virtual deadline among eligible tasks —
    /// first eligible entry in `(vd, id)` order.
    fn pick(&self, tasks: &TaskTable, cpu: CoreId) -> Option<TaskId> {
        let rq = &self.rqs[self.map.rq(cpu)];
        for &(_, t) in &rq.by_deadline {
            if rq.eligible(tasks.get(t).pd.vruntime) {
                return Some(t);
            }
        }
        // The weighted average guarantees at least one eligible task.
        debug_assert!(rq.live == 0, "no eligible task despite non-empty queue");
        None
    }

    /// Compacts a runqueue's order vector once tombstones dominate,
    /// reassigning the surviving tasks' `rq_slot` indices.
    fn maybe_compact(&mut self, rqi: usize, tasks: &mut TaskTable) {
        let rq = &mut self.rqs[rqi];
        if rq.order.len() >= 8 && rq.live * 2 < rq.order.len() {
            rq.order.retain(Option::is_some);
            for (i, slot) in rq.order.iter().enumerate() {
                if let Some(t) = slot {
                    tasks.get_mut(*t).pd.rq_slot = i as u32;
                }
            }
        }
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.rqs.iter().map(|r| r.live).sum()
    }
}

impl Policy for Eevdf {
    fn name(&self) -> &'static str {
        "skyloft-eevdf"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.map = CoreMap::new(&env.worker_cores);
        self.rqs = (0..self.map.len()).map(|_| EevdfRq::new()).collect();
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, _now: Nanos) {
        let task = tasks.get_mut(t);
        task.pd.vruntime = 0;
        task.pd.lag = 0;
        task.pd.slice_used = Nanos::ZERO;
        if task.pd.weight == 0 {
            task.pd.weight = NICE0_WEIGHT as u32;
        }
    }

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        let rqi = self.map.rq(cpu);
        let v = self.rqs[rqi].v().unwrap_or(self.rqs[rqi].min_vruntime);
        let task = tasks.get_mut(t);
        match flags {
            EnqueueFlags::New => {
                // New tasks join with zero lag.
                task.pd.vruntime = v;
            }
            EnqueueFlags::Wakeup => {
                // place_entity: re-enter at V minus the preserved lag,
                // so sleeping neither gains nor loses service.
                let lag = task.pd.lag.clamp(
                    -(self.params.min_granularity.0 as i64),
                    self.params.min_granularity.0 as i64,
                );
                task.pd.vruntime = (v as i128 - lag as i128).max(0) as u64;
            }
            EnqueueFlags::Preempted | EnqueueFlags::Yield => {
                // Keep vruntime: the deadline carries over.
            }
        }
        task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        self.rqs[rqi].attach(t, &mut task.pd);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let t = self.pick(tasks, cpu)?;
        let rqi = self.map.rq(cpu);
        let pd = tasks.get(t).pd;
        self.rqs[rqi].detach(t, &pd);
        self.rqs[rqi].update_min(pd.vruntime);
        self.maybe_compact(rqi, tasks);
        tasks.get_mut(t).pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn enqueue_batch(
        &mut self,
        tasks: &mut TaskTable,
        batch: &[(TaskId, Option<CoreId>, EnqueueFlags)],
        now: Nanos,
    ) {
        // The fused path needs the whole burst on one runqueue; mixed-hint
        // bursts (rare) fall back to the serial loop.
        let Some(&(_, hint0, _)) = batch.first() else {
            return;
        };
        let rqi = self.map.rq(hint0.unwrap_or(self.cores[0]));
        if batch
            .iter()
            .any(|&(_, h, _)| self.map.rq(h.unwrap_or(self.cores[0])) != rqi)
        {
            for &(t, hint, flags) in batch {
                self.task_enqueue(tasks, t, hint, flags, now);
            }
            return;
        }
        // One aggregate update per batch: the accumulators live in locals
        // across the burst and are stored back once. Each task still sees
        // the V produced by its predecessors (same math as the serial
        // loop, minus the per-task field round-trips).
        let base_slice = self.params.min_granularity.0;
        let lag_clamp = self.params.min_granularity.0 as i64;
        let rq = &mut self.rqs[rqi];
        let min = rq.min_vruntime;
        let mut load = rq.avg_load;
        let mut avg = rq.avg_vruntime;
        let mut live = rq.live;
        for &(t, _, flags) in batch {
            let v = if live == 0 {
                min
            } else if load == 0 {
                0
            } else {
                (min as i128 + avg.div_euclid(load as i128)) as u64
            };
            let task = tasks.get_mut(t);
            match flags {
                EnqueueFlags::New => {
                    task.pd.vruntime = v;
                }
                EnqueueFlags::Wakeup => {
                    let lag = task.pd.lag.clamp(-lag_clamp, lag_clamp);
                    task.pd.vruntime = (v as i128 - lag as i128).max(0) as u64;
                }
                EnqueueFlags::Preempted | EnqueueFlags::Yield => {}
            }
            task.pd.deadline =
                task.pd.vruntime + base_slice * NICE0_WEIGHT / task.pd.weight.max(1) as u64;
            task.pd.rq_slot = rq.order.len() as u32;
            rq.order.push(Some(t));
            live += 1;
            rq.by_deadline.insert((task.pd.deadline, t));
            avg += (task.pd.vruntime as i128 - min as i128) * task.pd.weight as i128;
            load += task.pd.weight as u64;
        }
        rq.live = live;
        rq.avg_load = load;
        rq.avg_vruntime = avg;
    }

    fn pick_batch(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        max: usize,
        _now: Nanos,
        out: &mut Vec<TaskId>,
    ) {
        // The serial dequeue rebases `min_vruntime` after every pick; the
        // eligibility test and V are exactly invariant under that rebase
        // (both sides shift by Δ·load), so one rebase to the max picked
        // vruntime after the batch yields the identical pick sequence —
        // and one tombstone-compaction check instead of `max`.
        let rqi = self.map.rq(cpu);
        let mut floor = self.rqs[rqi].min_vruntime;
        let mut picked = 0;
        while picked < max {
            let Some(t) = self.pick(tasks, cpu) else {
                break;
            };
            let pd = tasks.get(t).pd;
            self.rqs[rqi].detach(t, &pd);
            floor = floor.max(pd.vruntime);
            tasks.get_mut(t).pd.slice_used = Nanos::ZERO;
            out.push(t);
            picked += 1;
        }
        if picked > 0 {
            self.rqs[rqi].update_min(floor);
            self.maybe_compact(rqi, tasks);
        }
    }

    fn task_block(&mut self, tasks: &mut TaskTable, t: TaskId, cpu: CoreId, _now: Nanos) {
        // Preserve the task's lag across the sleep.
        let rq = &self.rqs[self.map.rq(cpu)];
        let v = rq.v().unwrap_or(rq.min_vruntime);
        let task = tasks.get_mut(t);
        task.pd.lag = v as i64 - task.pd.vruntime as i64;
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        let slice_done = {
            let task = tasks.get_mut(current);
            let delta = ran.saturating_sub(task.pd.slice_used);
            task.pd.slice_used = ran;
            task.pd.vruntime += delta.0 * NICE0_WEIGHT / task.pd.weight.max(1) as u64;
            ran >= self.params.min_granularity
        };
        // Once the current request (base slice) is fulfilled, the task
        // would issue a new request with a later deadline; if any waiter is
        // queued, the eligible-earliest-deadline pick goes to the queue.
        slice_done && self.rqs[self.map.rq(cpu)].live > 0
    }

    fn check_wakeup_preempt(
        &mut self,
        tasks: &TaskTable,
        woken: TaskId,
        cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt if the woken task is eligible with an earlier deadline.
        let Some(v) = self.rqs[self.map.rq(cpu)].v() else {
            return false;
        };
        let w = &tasks.get(woken).pd;
        w.vruntime <= v && w.deadline < tasks.get(current).pd.deadline
    }

    fn sched_balance(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.rqs[self.map.rq(c)].live)?;
        let vi = self.map.rq(victim);
        let t = self.rqs[vi].newest()?;
        let pd = tasks.get(t).pd;
        self.rqs[vi].detach(t, &pd);
        self.maybe_compact(vi, tasks);
        let rq_min = self.rqs[self.map.rq(cpu)].min_vruntime;
        let task = tasks.get_mut(t);
        task.pd.vruntime = task.pd.vruntime.max(rq_min);
        task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // Contract (`Policy::queue_delay`): sojourn of the oldest waiting
        // task across all runqueues, by `runnable_since`. The deadline tree
        // orders by virtual deadline, so the oldest arrival needs a scan.
        self.rqs
            .iter()
            .flat_map(|rq| rq.by_deadline.iter().map(|&(_, t)| t))
            .map(|t| tasks.get(t).runnable_since)
            .min()
            .map(|since| now.saturating_sub(since))
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn setup(n: usize) -> (Eevdf, TaskTable) {
        let mut p = Eevdf::new(SchedParams::SKYLOFT_EEVDF);
        p.sched_init(&SchedEnv {
            worker_cores: (0..n).collect(),
            dispatcher: None,
        });
        (p, TaskTable::new())
    }

    fn mk(p: &mut Eevdf, tasks: &mut TaskTable) -> TaskId {
        let t = tasks.insert(|id| Task::bare(id, 0));
        p.task_init(tasks, t, Nanos::ZERO);
        t
    }

    #[test]
    fn picks_eligible_earliest_deadline() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        let c = mk(&mut p, &mut tasks);
        // b is far ahead in vruntime with a huge weight, which drags V just
        // below its vruntime: b gets the earliest virtual deadline
        // (100_012) yet is ineligible. Among the eligible pair, c's
        // deadline (102_500) beats a's (107_500).
        tasks.get_mut(a).pd.vruntime = 95_000;
        tasks.get_mut(b).pd.vruntime = 100_000;
        tasks.get_mut(b).pd.weight = 1_048_576;
        tasks.get_mut(c).pd.vruntime = 90_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, c, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        assert_eq!(p.avg_vruntime(&tasks, 0), Some(99_985));
        assert_eq!(tasks.get(b).pd.deadline, 100_012);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(c));
    }

    #[test]
    fn always_one_eligible() {
        let (mut p, mut tasks) = setup(1);
        // A single task with a huge vruntime is still eligible because it
        // defines V.
        let a = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 10_000_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
    }

    #[test]
    fn lag_preserved_across_sleep() {
        let (mut p, mut tasks) = setup(1);
        let sleeper = mk(&mut p, &mut tasks);
        let other = mk(&mut p, &mut tasks);
        tasks.get_mut(other).pd.vruntime = 100_000;
        p.task_enqueue(
            &mut tasks,
            other,
            Some(0),
            EnqueueFlags::Preempted,
            Nanos::ZERO,
        );
        // The sleeper is behind (vruntime 40_000 < V=100_000): positive lag.
        tasks.get_mut(sleeper).pd.vruntime = 40_000;
        p.task_block(&mut tasks, sleeper, 0, Nanos::ZERO);
        let lag = tasks.get(sleeper).pd.lag;
        assert_eq!(lag, 60_000);
        // On wakeup the lag is honored but clamped to one base slice.
        p.task_enqueue(
            &mut tasks,
            sleeper,
            Some(0),
            EnqueueFlags::Wakeup,
            Nanos::ZERO,
        );
        let vr = tasks.get(sleeper).pd.vruntime;
        assert_eq!(vr, 100_000 - 12_500);
    }

    #[test]
    fn tick_preempts_after_base_slice_with_earlier_deadline() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        tasks.get_mut(cur).pd.deadline = 50_000;
        let w = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::New, Nanos::ZERO);
        // Before the base slice (12.5 us): never preempt.
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos(10_000), Nanos(10_000)));
        // After the base slice: preempt (waiter deadline <= current's).
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos(13_000), Nanos(13_000)));
    }

    #[test]
    fn wakeup_preempt_needs_eligibility_and_deadline() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        tasks.get_mut(cur).pd.deadline = 100_000;
        let w = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::Wakeup, Nanos::ZERO);
        // Woken at V with deadline V + base_slice: earlier than current's.
        assert!(p.check_wakeup_preempt(&tasks, w, 0, cur, Nanos::ZERO, Nanos::ZERO));
        tasks.get_mut(cur).pd.deadline = 1;
        assert!(!p.check_wakeup_preempt(&tasks, w, 0, cur, Nanos::ZERO, Nanos::ZERO));
    }

    #[test]
    fn weighted_average_is_exact() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 1_000;
        tasks.get_mut(a).pd.weight = 1024;
        tasks.get_mut(b).pd.vruntime = 3_000;
        tasks.get_mut(b).pd.weight = 3072;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        // V = (1000*1024 + 3000*3072) / 4096 = 2500.
        assert_eq!(p.avg_vruntime(&tasks, 0), Some(2_500));
    }

    #[test]
    fn accumulators_match_direct_sum_after_churn() {
        let (mut p, mut tasks) = setup(1);
        let mut queued = Vec::new();
        for i in 0..10u64 {
            let t = mk(&mut p, &mut tasks);
            tasks.get_mut(t).pd.vruntime = i * 1_000;
            tasks.get_mut(t).pd.weight = 1024 + (i as u32) * 512;
            p.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
            queued.push(t);
        }
        for _ in 0..4 {
            let t = p.task_dequeue(&mut tasks, 0, Nanos::ZERO).unwrap();
            queued.retain(|&x| x != t);
        }
        // The incremental V must equal the direct weighted average of the
        // survivors, with the same truncating division as the oracle.
        let mut num: u128 = 0;
        let mut den: u128 = 0;
        for &t in &queued {
            let pd = &tasks.get(t).pd;
            num += pd.vruntime as u128 * pd.weight as u128;
            den += pd.weight as u128;
        }
        assert_eq!(p.avg_vruntime(&tasks, 0), Some((num / den) as u64));
    }

    #[test]
    fn rebased_accumulators_survive_u64_limit_vruntimes() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = u64::MAX - 100_000;
        tasks.get_mut(b).pd.vruntime = u64::MAX - 300_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        assert_eq!(p.avg_vruntime(&tasks, 0), Some(u64::MAX - 200_000));
        // a is ahead of V (ineligible); b must be picked despite a key
        // far above the queue's floor.
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(b));
        // After the floor jumps to b's vruntime the lone survivor still
        // averages exactly.
        assert_eq!(p.avg_vruntime(&tasks, 0), Some(u64::MAX - 100_000));
    }

    #[test]
    fn balance_steals_newest_from_longest_queue() {
        let (mut p, mut tasks) = setup(2);
        let mut ids = Vec::new();
        for i in 0..3u64 {
            let t = mk(&mut p, &mut tasks);
            tasks.get_mut(t).pd.vruntime = 10_000 + i;
            p.task_enqueue(&mut tasks, t, Some(1), EnqueueFlags::Preempted, Nanos::ZERO);
            ids.push(t);
        }
        // Core 0 is empty: it steals the most recent arrival on core 1.
        assert_eq!(p.sched_balance(&mut tasks, 0, Nanos::ZERO), Some(ids[2]));
        assert_eq!(p.total_queued(), 2);
    }

    #[test]
    fn slot_compaction_keeps_picks_and_balance_consistent() {
        let (mut p, mut tasks) = setup(2);
        // Interleave enough enqueue/dequeue churn on core 0 to trigger
        // tombstone compaction, then verify structural integrity by
        // draining everything in both directions.
        let mut live = Vec::new();
        for round in 0..6u64 {
            for i in 0..4u64 {
                let t = mk(&mut p, &mut tasks);
                tasks.get_mut(t).pd.vruntime = round * 100 + i;
                p.task_enqueue(&mut tasks, t, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
                live.push(t);
            }
            for _ in 0..3 {
                let t = p.task_dequeue(&mut tasks, 0, Nanos::ZERO).unwrap();
                live.retain(|&x| x != t);
            }
        }
        assert_eq!(p.total_queued(), live.len());
        // Drain half by stealing (newest-first), half by picking.
        for _ in 0..3 {
            let t = p.sched_balance(&mut tasks, 1, Nanos::ZERO).unwrap();
            assert_eq!(t, *live.last().unwrap());
            live.pop();
        }
        while let Some(t) = p.task_dequeue(&mut tasks, 0, Nanos::ZERO) {
            live.retain(|&x| x != t);
        }
        assert!(live.is_empty());
        assert_eq!(p.total_queued(), 0);
    }
}
