//! Earliest Eligible Virtual Deadline First (Skyloft EEVDF, §5.1; 579 LoC
//! in Table 4).
//!
//! EEVDF (Stoica & Abdel-Wahab, 1995; Linux v6.6's CFS replacement)
//! replaces CFS's heuristics with a principled rule: among *eligible*
//! tasks — those whose vruntime is at or before the queue's weighted
//! average virtual time `V` (equivalently, whose lag is non-negative) —
//! pick the one with the earliest *virtual deadline* `vd = ve +
//! slice/weight`. A task that sleeps keeps its lag, so a woken
//! latency-sensitive task with positive lag gets a near-immediate, but
//! bounded, claim to the CPU — the mechanism behind EEVDF's lower wakeup
//! latencies in Figure 5.

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft::SchedParams;
use skyloft_sim::Nanos;

use crate::cfs::NICE0_WEIGHT;

struct EevdfRq {
    /// Queued (waiting) tasks; small per-core populations make a linear
    /// scan cheaper than an augmented tree.
    queue: Vec<TaskId>,
    /// Monotonic floor tracking the queue's virtual time.
    min_vruntime: u64,
}

/// EEVDF policy state.
pub struct Eevdf {
    rqs: Vec<EevdfRq>,
    cores: Vec<CoreId>,
    params: SchedParams,
}

impl Eevdf {
    /// Creates the policy; `params.min_granularity` is the base slice.
    pub fn new(params: SchedParams) -> Self {
        Eevdf {
            rqs: Vec::new(),
            cores: Vec::new(),
            params,
        }
    }

    /// Weighted average virtual time `V` of the queued tasks.
    ///
    /// Linux tracks this incrementally (`avg_vruntime`); with per-core
    /// populations of at most a few dozen tasks a direct computation is
    /// simpler and exact.
    fn avg_vruntime(&self, tasks: &TaskTable, cpu: CoreId) -> Option<u64> {
        let rq = &self.rqs[cpu];
        if rq.queue.is_empty() {
            return None;
        }
        let mut num: u128 = 0;
        let mut den: u128 = 0;
        for &t in &rq.queue {
            let pd = &tasks.get(t).pd;
            num += pd.vruntime as u128 * pd.weight as u128;
            den += pd.weight as u128;
        }
        Some((num / den.max(1)) as u64)
    }

    /// Virtual deadline of a task: `ve + base_slice * 1024/weight`.
    fn deadline(&self, vruntime: u64, weight: u32) -> u64 {
        vruntime + self.params.min_granularity.0 * NICE0_WEIGHT / weight.max(1) as u64
    }

    /// EEVDF pick: earliest virtual deadline among eligible tasks.
    fn pick(&self, tasks: &TaskTable, cpu: CoreId) -> Option<TaskId> {
        let v = self.avg_vruntime(tasks, cpu)?;
        let rq = &self.rqs[cpu];
        let mut best: Option<(u64, TaskId)> = None;
        for &t in &rq.queue {
            let pd = &tasks.get(t).pd;
            // Eligibility: lag = V - ve >= 0.
            if pd.vruntime > v {
                continue;
            }
            let vd = pd.deadline;
            if best.is_none_or(|(bd, bt)| vd < bd || (vd == bd && t < bt)) {
                best = Some((vd, t));
            }
        }
        // The weighted average guarantees at least one eligible task.
        debug_assert!(best.is_some(), "no eligible task despite non-empty queue");
        best.map(|(_, t)| t)
    }

    /// Total queued tasks across all cores.
    pub fn total_queued(&self) -> usize {
        self.rqs.iter().map(|r| r.queue.len()).sum()
    }
}

impl Policy for Eevdf {
    fn name(&self) -> &'static str {
        "skyloft-eevdf"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PerCpu
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        let max = env.worker_cores.iter().copied().max().unwrap_or(0);
        self.rqs = (0..=max)
            .map(|_| EevdfRq {
                queue: Vec::new(),
                min_vruntime: 0,
            })
            .collect();
        self.cores = env.worker_cores.clone();
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, _now: Nanos) {
        let task = tasks.get_mut(t);
        task.pd.vruntime = 0;
        task.pd.lag = 0;
        task.pd.slice_used = Nanos::ZERO;
        if task.pd.weight == 0 {
            task.pd.weight = NICE0_WEIGHT as u32;
        }
    }

    fn task_terminate(&mut self, _tasks: &mut TaskTable, _t: TaskId, _now: Nanos) {}

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        _now: Nanos,
    ) {
        let cpu = cpu.unwrap_or(self.cores[0]);
        let v = self
            .avg_vruntime(tasks, cpu)
            .unwrap_or(self.rqs[cpu].min_vruntime);
        {
            let task = tasks.get_mut(t);
            match flags {
                EnqueueFlags::New => {
                    // New tasks join with zero lag.
                    task.pd.vruntime = v;
                }
                EnqueueFlags::Wakeup => {
                    // place_entity: re-enter at V minus the preserved lag,
                    // so sleeping neither gains nor loses service.
                    let lag = task.pd.lag.clamp(
                        -(self.params.min_granularity.0 as i64),
                        self.params.min_granularity.0 as i64,
                    );
                    task.pd.vruntime = (v as i128 - lag as i128).max(0) as u64;
                }
                EnqueueFlags::Preempted | EnqueueFlags::Yield => {
                    // Keep vruntime: the deadline carries over.
                }
            }
            task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        }
        self.rqs[cpu].queue.push(t);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let t = self.pick(tasks, cpu)?;
        let rq = &mut self.rqs[cpu];
        rq.queue.retain(|&x| x != t);
        let task = tasks.get_mut(t);
        rq.min_vruntime = rq.min_vruntime.max(task.pd.vruntime);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn task_block(&mut self, tasks: &mut TaskTable, t: TaskId, cpu: CoreId, _now: Nanos) {
        // Preserve the task's lag across the sleep.
        let v = self
            .avg_vruntime(tasks, cpu)
            .unwrap_or(self.rqs[cpu].min_vruntime);
        let task = tasks.get_mut(t);
        task.pd.lag = v as i64 - task.pd.vruntime as i64;
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        _now: Nanos,
    ) -> bool {
        let slice_done = {
            let task = tasks.get_mut(current);
            let delta = ran.saturating_sub(task.pd.slice_used);
            task.pd.slice_used = ran;
            task.pd.vruntime += delta.0 * NICE0_WEIGHT / task.pd.weight.max(1) as u64;
            ran >= self.params.min_granularity
        };
        // Once the current request (base slice) is fulfilled, the task
        // would issue a new request with a later deadline; if any waiter is
        // queued, the eligible-earliest-deadline pick goes to the queue.
        slice_done && !self.rqs[cpu].queue.is_empty()
    }

    fn check_wakeup_preempt(
        &mut self,
        tasks: &TaskTable,
        woken: TaskId,
        cpu: CoreId,
        current: TaskId,
        _ran: Nanos,
        _now: Nanos,
    ) -> bool {
        // Preempt if the woken task is eligible with an earlier deadline.
        let Some(v) = self.avg_vruntime(tasks, cpu) else {
            return false;
        };
        let w = &tasks.get(woken).pd;
        w.vruntime <= v && w.deadline < tasks.get(current).pd.deadline
    }

    fn sched_balance(&mut self, tasks: &mut TaskTable, cpu: CoreId, _now: Nanos) -> Option<TaskId> {
        let victim = self
            .cores
            .iter()
            .copied()
            .filter(|&c| c != cpu)
            .max_by_key(|&c| self.rqs[c].queue.len())?;
        let t = self.rqs[victim].queue.pop()?;
        let rq_min = self.rqs[cpu].min_vruntime;
        let task = tasks.get_mut(t);
        task.pd.vruntime = task.pd.vruntime.max(rq_min);
        task.pd.deadline = self.deadline(task.pd.vruntime, task.pd.weight);
        task.pd.slice_used = Nanos::ZERO;
        Some(t)
    }

    fn queue_len(&self) -> Option<usize> {
        Some(self.total_queued())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    fn setup(n: usize) -> (Eevdf, TaskTable) {
        let mut p = Eevdf::new(SchedParams::SKYLOFT_EEVDF);
        p.sched_init(&SchedEnv {
            worker_cores: (0..n).collect(),
            dispatcher: None,
        });
        (p, TaskTable::new())
    }

    fn mk(p: &mut Eevdf, tasks: &mut TaskTable) -> TaskId {
        let t = tasks.insert(|id| Task::bare(id, 0));
        p.task_init(tasks, t, Nanos::ZERO);
        t
    }

    #[test]
    fn picks_eligible_earliest_deadline() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        let c = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::New, Nanos::ZERO);
        p.task_enqueue(&mut tasks, c, Some(0), EnqueueFlags::New, Nanos::ZERO);
        // Make b ineligible (vruntime ahead of V) and give c a later
        // deadline than a.
        tasks.get_mut(b).pd.vruntime = 1_000_000;
        tasks.get_mut(b).pd.deadline = 1_000_100; // earliest vd, but ineligible
        tasks.get_mut(a).pd.deadline = 5_000_000;
        tasks.get_mut(c).pd.deadline = 6_000_000;
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
    }

    #[test]
    fn always_one_eligible() {
        let (mut p, mut tasks) = setup(1);
        // A single task with a huge vruntime is still eligible because it
        // defines V.
        let a = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 10_000_000;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos::ZERO), Some(a));
    }

    #[test]
    fn lag_preserved_across_sleep() {
        let (mut p, mut tasks) = setup(1);
        let sleeper = mk(&mut p, &mut tasks);
        let other = mk(&mut p, &mut tasks);
        tasks.get_mut(other).pd.vruntime = 100_000;
        p.task_enqueue(
            &mut tasks,
            other,
            Some(0),
            EnqueueFlags::Preempted,
            Nanos::ZERO,
        );
        // The sleeper is behind (vruntime 40_000 < V=100_000): positive lag.
        tasks.get_mut(sleeper).pd.vruntime = 40_000;
        p.task_block(&mut tasks, sleeper, 0, Nanos::ZERO);
        let lag = tasks.get(sleeper).pd.lag;
        assert_eq!(lag, 60_000);
        // On wakeup the lag is honored but clamped to one base slice.
        p.task_enqueue(
            &mut tasks,
            sleeper,
            Some(0),
            EnqueueFlags::Wakeup,
            Nanos::ZERO,
        );
        let vr = tasks.get(sleeper).pd.vruntime;
        assert_eq!(vr, 100_000 - 12_500);
    }

    #[test]
    fn tick_preempts_after_base_slice_with_earlier_deadline() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        tasks.get_mut(cur).pd.deadline = 50_000;
        let w = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::New, Nanos::ZERO);
        // Before the base slice (12.5 us): never preempt.
        assert!(!p.sched_timer_tick(&mut tasks, 0, cur, Nanos(10_000), Nanos(10_000)));
        // After the base slice: preempt (waiter deadline <= current's).
        assert!(p.sched_timer_tick(&mut tasks, 0, cur, Nanos(13_000), Nanos(13_000)));
    }

    #[test]
    fn wakeup_preempt_needs_eligibility_and_deadline() {
        let (mut p, mut tasks) = setup(1);
        let cur = mk(&mut p, &mut tasks);
        tasks.get_mut(cur).pd.deadline = 100_000;
        let w = mk(&mut p, &mut tasks);
        p.task_enqueue(&mut tasks, w, Some(0), EnqueueFlags::Wakeup, Nanos::ZERO);
        // Woken at V with deadline V + base_slice: earlier than current's.
        assert!(p.check_wakeup_preempt(&tasks, w, 0, cur, Nanos::ZERO, Nanos::ZERO));
        tasks.get_mut(cur).pd.deadline = 1;
        assert!(!p.check_wakeup_preempt(&tasks, w, 0, cur, Nanos::ZERO, Nanos::ZERO));
    }

    #[test]
    fn weighted_average_is_exact() {
        let (mut p, mut tasks) = setup(1);
        let a = mk(&mut p, &mut tasks);
        let b = mk(&mut p, &mut tasks);
        tasks.get_mut(a).pd.vruntime = 1_000;
        tasks.get_mut(a).pd.weight = 1024;
        tasks.get_mut(b).pd.vruntime = 3_000;
        tasks.get_mut(b).pd.weight = 3072;
        p.task_enqueue(&mut tasks, a, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        p.task_enqueue(&mut tasks, b, Some(0), EnqueueFlags::Preempted, Nanos::ZERO);
        // V = (1000*1024 + 3000*3072) / 4096 = 2500.
        assert_eq!(p.avg_vruntime(&tasks, 0), Some(2_500));
    }
}
