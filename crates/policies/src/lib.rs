//! Scheduling policies implemented on Skyloft's scheduling operations
//! (Table 2), mirroring the schedulers evaluated in §5 and their line
//! counts in Table 4:
//!
//! * [`rr::RoundRobin`] — per-CPU round-robin with time slicing (§5.1);
//!   an infinite slice gives the Skyloft-FIFO of Figure 6.
//! * [`cfs::Cfs`] — Completely Fair Scheduler with vruntime accounting,
//!   sleeper compensation and wakeup preemption (§5.1).
//! * [`eevdf::Eevdf`] — Earliest Eligible Virtual Deadline First, the
//!   lag-based fair scheduler merged in Linux v6.6 (§5.1).
//! * [`shinjuku::Shinjuku`] — the centralized preemptive-FCFS policy of
//!   Shinjuku (NSDI'19), driven by a dispatcher core (§5.2).
//! * [`shinjuku_shenango::ShinjukuShenango`] — the same policy co-located
//!   with a best-effort application under Shenango-style core allocation
//!   (§5.2, Figures 7b/7c).
//! * [`work_stealing::WorkStealing`] — Shenango-style per-CPU deques with
//!   stealing, optionally preemptive with a quantum (§5.3).
//!
//! Each policy is a few hundred lines including tests — the paper's claim
//! that Skyloft's operations make schedulers this small is directly
//! observable here (the `tab4_loc` bench target counts them).
//!
//! # The `reference-policy` feature
//!
//! [`reference`] holds frozen pre-optimization copies of every policy
//! (full-scan EEVDF averages, O(n) dequeues, dense runqueue vectors).
//! They are always compiled — differential tests drive both versions in
//! one binary — and the `reference-policy` feature additionally swaps the
//! crate-root re-exports ([`Cfs`], [`Eevdf`], …) to the reference
//! versions, so the entire test suite and every figure sweep can run
//! against the oracle (the `reference-queue`/`reference-deque` pattern).
//! Module paths (`eevdf::Eevdf`, …) always name the optimized versions.

#![warn(missing_docs)]

pub mod cfs;
pub mod coremap;
pub mod eevdf;
pub mod reference;
pub mod rr;
pub mod shinjuku;
pub mod shinjuku_shenango;
pub mod work_stealing;

#[cfg(not(feature = "reference-policy"))]
pub use cfs::Cfs;
#[cfg(not(feature = "reference-policy"))]
pub use eevdf::Eevdf;
#[cfg(not(feature = "reference-policy"))]
pub use rr::RoundRobin;
#[cfg(not(feature = "reference-policy"))]
pub use shinjuku::Shinjuku;
#[cfg(not(feature = "reference-policy"))]
pub use shinjuku_shenango::ShinjukuShenango;
#[cfg(not(feature = "reference-policy"))]
pub use work_stealing::WorkStealing;

#[cfg(feature = "reference-policy")]
pub use reference::{Cfs, Eevdf, RoundRobin, Shinjuku, ShinjukuShenango, WorkStealing};
