//! Shinjuku scheduling + Shenango core allocation (§5.2, Figures 7b/7c;
//! 444 LoC in Table 4).
//!
//! The paper co-locates the latency-critical dispersive workload with a
//! best-effort batch application: the dispatcher runs the Shinjuku policy
//! while a Shenango-style allocator watches the global queue's head-of-line
//! delay every 5 μs, revoking cores from the batch application under
//! congestion and granting persistently idle cores to it. The allocator
//! itself lives in the framework (`Machine::core_alloc`); this policy adds
//! the congestion signal the allocator consumes: an exponentially weighted
//! view of queueing delay that avoids flapping grants/revokes on single
//! bursty samples.

use skyloft::ops::{CoreId, EnqueueFlags, Policy, PolicyKind, SchedEnv};
use skyloft::task::{TaskId, TaskTable};
use skyloft_sim::Nanos;

use crate::shinjuku::Shinjuku;

/// Shinjuku + congestion signal for the Shenango-style core allocator.
pub struct ShinjukuShenango {
    inner: Shinjuku,
    /// EWMA of the head-of-line queueing delay, in nanoseconds.
    ewma_delay_ns: f64,
    /// EWMA smoothing factor per observation.
    alpha: f64,
}

impl ShinjukuShenango {
    /// Creates the policy with the given preemption quantum.
    pub fn new(quantum: Option<Nanos>) -> Self {
        ShinjukuShenango {
            inner: Shinjuku::new(quantum),
            ewma_delay_ns: 0.0,
            alpha: 0.25,
        }
    }

    /// The smoothed congestion signal.
    pub fn smoothed_delay(&self) -> Nanos {
        Nanos(self.ewma_delay_ns as u64)
    }
}

impl Policy for ShinjukuShenango {
    fn name(&self) -> &'static str {
        "skyloft-shinjuku-shenango"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Centralized
    }

    fn sched_init(&mut self, env: &SchedEnv) {
        self.inner.sched_init(env);
    }

    fn task_init(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos) {
        self.inner.task_init(tasks, t, now);
    }

    fn task_terminate(&mut self, tasks: &mut TaskTable, t: TaskId, now: Nanos) {
        self.inner.task_terminate(tasks, t, now);
    }

    fn task_enqueue(
        &mut self,
        tasks: &mut TaskTable,
        t: TaskId,
        cpu: Option<CoreId>,
        flags: EnqueueFlags,
        now: Nanos,
    ) {
        self.inner.task_enqueue(tasks, t, cpu, flags, now);
    }

    fn task_dequeue(&mut self, tasks: &mut TaskTable, cpu: CoreId, now: Nanos) -> Option<TaskId> {
        self.inner.task_dequeue(tasks, cpu, now)
    }

    fn sched_poll(
        &mut self,
        tasks: &mut TaskTable,
        idle_workers: &[CoreId],
        now: Nanos,
        out: &mut Vec<(CoreId, TaskId)>,
    ) {
        self.inner.sched_poll(tasks, idle_workers, now, out);
    }

    fn sched_timer_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CoreId,
        current: TaskId,
        ran: Nanos,
        now: Nanos,
    ) -> bool {
        self.inner.sched_timer_tick(tasks, cpu, current, ran, now)
    }

    fn quantum(&self) -> Option<Nanos> {
        self.inner.quantum()
    }

    /// The allocator's congestion probe: sampling updates the EWMA and
    /// reports the smoothed delay.
    fn queue_delay(&self, tasks: &TaskTable, now: Nanos) -> Option<Nanos> {
        // `queue_delay` is a &self probe; interior smoothing state would
        // need a Cell. Report the max of the instantaneous and smoothed
        // values so a congestion spike is never hidden by the average —
        // the contract's "may over-report, never under-report" allowance.
        let smoothed = self.smoothed_delay();
        match self.inner.queue_delay(tasks, now) {
            Some(inst) => Some(inst.max(smoothed)),
            // Nothing queued: only a non-zero EWMA residue is worth
            // reporting (contract: `None` when idle and signal-free).
            None => (smoothed > Nanos::ZERO).then_some(smoothed),
        }
    }

    fn queue_len(&self) -> Option<usize> {
        self.inner.queue_len()
    }
}

impl ShinjukuShenango {
    /// Feeds one queue-delay observation into the EWMA (called by the
    /// allocator harness each decision interval).
    pub fn observe_delay(&mut self, tasks: &TaskTable, now: Nanos) {
        let inst = self.inner.queue_delay(tasks, now).unwrap_or(Nanos::ZERO).0 as f64;
        self.ewma_delay_ns = self.alpha * inst + (1.0 - self.alpha) * self.ewma_delay_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyloft::task::Task;

    #[test]
    fn delegates_to_shinjuku() {
        let mut p = ShinjukuShenango::new(Some(Nanos::from_us(30)));
        let mut tasks = TaskTable::new();
        let a = tasks.insert(|id| Task::bare(id, 0));
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos(5));
        assert_eq!(p.queue_len(), Some(1));
        assert_eq!(p.quantum(), Some(Nanos::from_us(30)));
        assert_eq!(p.task_dequeue(&mut tasks, 0, Nanos(10)), Some(a));
    }

    #[test]
    fn ewma_converges_toward_observations() {
        let mut p = ShinjukuShenango::new(None);
        let mut tasks = TaskTable::new();
        let a = tasks.insert(|id| Task::bare(id, 0));
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos(0));
        for _ in 0..50 {
            p.observe_delay(&tasks, Nanos::from_us(100));
        }
        let s = p.smoothed_delay();
        assert!(s > Nanos::from_us(90), "smoothed {s:?}");
    }

    #[test]
    fn queue_delay_reports_spikes_immediately() {
        let mut p = ShinjukuShenango::new(None);
        let mut tasks = TaskTable::new();
        assert_eq!(p.queue_delay(&tasks, Nanos(10)), None);
        let a = tasks.insert(|id| Task::bare(id, 0));
        p.task_enqueue(&mut tasks, a, None, EnqueueFlags::New, Nanos(0));
        // No EWMA samples yet: the instantaneous delay still shows.
        assert_eq!(p.queue_delay(&tasks, Nanos(500)), Some(Nanos(500)));
    }
}
