#!/bin/sh
# Runs every experiment binary at full measurement windows, logging output.
set -x
for b in tab4_loc tab5_params tab6_preemption sec54_switch tab7_threadops \
         fig5_schbench fig6_timeslice fig7a_single fig7b_multi \
         fig8a_memcached fig8b_rocksdb ablate_dispatcher ablate_quantum; do
  echo "### $b" 
  ./target/release/$b 2>/dev/null
  echo "### $b exit=$?"
done
