#!/bin/sh
# Runs every experiment binary at full measurement windows, logging output.
set -x
for b in tab4_loc tab5_params tab6_preemption sec54_switch tab7_threadops \
         fig5_schbench fig6_timeslice fig7a_single fig7b_multi \
         fig8a_memcached fig8b_rocksdb ablate_dispatcher ablate_quantum \
         slo_sweep; do
  echo "### $b"
  ./target/release/$b 2>/dev/null
  echo "### $b exit=$?"
done

# Golden byte-identity gate: the simulation is deterministic, so the
# figure CSVs a run just produced must match the committed goldens byte
# for byte. Any drift means a change altered scheduling decisions (the
# batched event/policy/NIC paths are required to be decision-identical
# to their serial forms) — fail loudly instead of silently shipping new
# numbers.
status=0
for f in fig5_schbench fig6_timeslice fig7a_single fig7a_tput slo_sweep; do
  if git diff --quiet -- "results/$f.csv"; then
    echo "### golden $f.csv: identical"
  else
    echo "### golden $f.csv: DRIFT (regenerated output differs from committed golden)"
    git --no-pager diff -- "results/$f.csv"
    status=1
  fi
done
exit $status
