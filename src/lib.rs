//! Umbrella crate for the Skyloft reproduction workspace.
//!
//! Re-exports the member crates so the integration tests (`tests/`) and
//! runnable examples (`examples/`) can reach everything through one
//! dependency. See the README for the map of the workspace and DESIGN.md
//! for the reproduction plan.

pub use skyloft;
pub use skyloft_apps as apps;
pub use skyloft_baselines as baselines;
pub use skyloft_hw as hw;
pub use skyloft_kmod as kmod;
pub use skyloft_metrics as metrics;
pub use skyloft_net as net;
pub use skyloft_policies as policies;
pub use skyloft_sim as sim;
pub use skyloft_uthread as uthread;
